package expr_test

import (
	"math"
	"testing"

	"prophet/internal/expr"
	"prophet/internal/sim"
)

// Statistical acceptance tests for the distribution samplers, at fixed
// seeds so they are deterministic. The draws come from sim.Stream — the
// very sampler both backends use — so these tests pin the agreement
// between drawDist and distMoments that the analytic solver depends on.

func mustDist(t *testing.T, src string) *expr.Dist {
	t.Helper()
	d, ok := expr.ParseDist(src)
	if !ok {
		t.Fatalf("ParseDist(%q) did not recognize a distribution literal", src)
	}
	return d
}

// sampleStats draws n values and returns the sample mean and variance.
func sampleStats(t *testing.T, d *expr.Dist, seed int64, n int) (mean, variance float64) {
	t.Helper()
	s := sim.NewStream(seed)
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v, err := d.Sample(expr.Builtins, s)
		if err != nil {
			t.Fatalf("Sample: %v", err)
		}
		sum += v
		sumsq += v * v
	}
	mean = sum / float64(n)
	variance = sumsq/float64(n) - mean*mean
	return mean, variance
}

// Every family's sample moments must converge to the closed-form moments
// the analytic solver uses — including the zero-censoring of Normal.
func TestDistMomentsMatchSampling(t *testing.T) {
	const n = 200_000
	for _, src := range []string{
		"exp(2)",
		"normal(5, 1)",
		"normal(1, 2)", // heavily censored: ~31% of raw draws are negative
		"normal(-1, 1)", // mostly censored to zero
		"uniform(1, 3)",
		"empirical(1, 2, 6)",
	} {
		t.Run(src, func(t *testing.T) {
			d := mustDist(t, src)
			wantMean, wantVar, err := d.Moments(expr.Builtins)
			if err != nil {
				t.Fatalf("Moments: %v", err)
			}
			gotMean, gotVar := sampleStats(t, d, 7, n)
			// Six standard errors of the mean, plus float slack.
			tol := 6*math.Sqrt(wantVar/n) + 1e-9
			if math.Abs(gotMean-wantMean) > tol {
				t.Errorf("mean: sampled %v, closed-form %v (tol %v)", gotMean, wantMean, tol)
			}
			// Variance converges more slowly; 5% relative is ample at 200k
			// draws for these light-tailed families.
			if math.Abs(gotVar-wantVar) > 0.05*wantVar+1e-9 {
				t.Errorf("variance: sampled %v, closed-form %v", gotVar, wantVar)
			}
		})
	}
}

// Chi-square goodness of fit for the uniform sampler: 10 equal bins over
// [0,1), critical value 27.88 at p=0.001 with 9 degrees of freedom.
func TestUniformChiSquare(t *testing.T) {
	d := mustDist(t, "uniform(0, 1)")
	s := sim.NewStream(11)
	const n, bins = 100_000, 10
	var counts [bins]int
	for i := 0; i < n; i++ {
		v, err := d.Sample(expr.Builtins, s)
		if err != nil {
			t.Fatal(err)
		}
		b := int(v * bins)
		if b < 0 || b >= bins {
			t.Fatalf("draw %v outside [0,1)", v)
		}
		counts[b]++
	}
	expected := float64(n) / bins
	var chi2 float64
	for _, c := range counts {
		diff := float64(c) - expected
		chi2 += diff * diff / expected
	}
	if chi2 > 27.88 {
		t.Errorf("chi-square %v exceeds the p=0.001 critical value; counts %v", chi2, counts)
	}
}

// Chi-square for the empirical chooser: each listed value must be picked
// uniformly (critical value 16.27 at p=0.001 with 3 degrees of freedom).
func TestEmpiricalChiSquare(t *testing.T) {
	d := mustDist(t, "empirical(10, 20, 30, 40)")
	s := sim.NewStream(13)
	const n = 100_000
	counts := map[float64]int{}
	for i := 0; i < n; i++ {
		v, err := d.Sample(expr.Builtins, s)
		if err != nil {
			t.Fatal(err)
		}
		counts[v]++
	}
	if len(counts) != 4 {
		t.Fatalf("empirical drew %d distinct values, want 4: %v", len(counts), counts)
	}
	expected := float64(n) / 4
	var chi2 float64
	for _, c := range counts {
		diff := float64(c) - expected
		chi2 += diff * diff / expected
	}
	if chi2 > 16.27 {
		t.Errorf("chi-square %v exceeds the p=0.001 critical value; counts %v", chi2, counts)
	}
}

// The slot-resolved form must consume the seed stream bit-identically to
// the map-backed form — the property the lowered-equivalence oracle
// relies on with stochastic tags.
func TestSlotDistMatchesDist(t *testing.T) {
	for _, src := range []string{"exp(0.5)", "normal(2, 1)", "uniform(1, 4)", "empirical(1, 2, 3)"} {
		d := mustDist(t, src)
		sd := d.Resolve(func(string) expr.SlotRule { return expr.SlotRule{} })
		a, b := sim.NewStream(42), sim.NewStream(42)
		se := &expr.SlotEnv{Fallback: expr.Builtins}
		for i := 0; i < 1000; i++ {
			va, err := d.Sample(expr.Builtins, a)
			if err != nil {
				t.Fatal(err)
			}
			vb, err := sd.Sample(se, b)
			if err != nil {
				t.Fatal(err)
			}
			if va != vb {
				t.Fatalf("%s draw %d: Dist %v, SlotDist %v", src, i, va, vb)
			}
		}
	}
}

// ParseDist recognizes exactly the whole-source single-call form with
// the right arity; everything else stays an ordinary expression.
func TestParseDistRecognition(t *testing.T) {
	for _, tc := range []struct {
		src  string
		ok   bool
		kind expr.DistKind
	}{
		{"exp(2)", true, expr.DistExp},
		{"exp(c * 2)", true, expr.DistExp},
		{"normal(1, 2)", true, expr.DistNormal},
		{"uniform(0, 1)", true, expr.DistUniform},
		{"empirical(5)", true, expr.DistEmpirical},
		{"empirical(1, 2, 3, 4)", true, expr.DistEmpirical},
		{"1 + exp(2)", false, 0},
		{"exp(2) * 3", false, 0},
		{"normal(1)", false, 0},
		{"uniform(1, 2, 3)", false, 0},
		{"empirical()", false, 0},
		{"foo(1)", false, 0},
		{"(((", false, 0},
		{"42", false, 0},
	} {
		d, ok := expr.ParseDist(tc.src)
		if ok != tc.ok {
			t.Errorf("ParseDist(%q) ok = %v, want %v", tc.src, ok, tc.ok)
			continue
		}
		if ok && d.Kind != tc.kind {
			t.Errorf("ParseDist(%q) kind = %v, want %v", tc.src, d.Kind, tc.kind)
		}
	}
}
