package expr

// Slot-resolved evaluation: the lowered backend (internal/lower) assigns
// every model variable a fixed slot index ahead of time, so the simulation
// inner loop reads variables by integer indexing into a reusable frame
// instead of chasing a chain of map lookups (locals -> globals -> system
// parameters) per reference. Names the resolver cannot place in a slot
// (and every function call) fall back to a regular Env, so slot-resolved
// evaluation is a strict fast path, not a different semantics.

// SlotKind classifies how a variable name resolves against a SlotEnv.
type SlotKind int

const (
	// SlotDynamic leaves the name to SlotEnv.Fallback at eval time.
	SlotDynamic SlotKind = iota
	// SlotLocal reads Locals[Local]: a local slot that is always defined
	// (pid/tid/uid and declared scope-local variables).
	SlotLocal
	// SlotLocalDyn reads Locals[Local] only while Defined[Local] is set
	// (loop variables, code-fragment assignment targets); otherwise the
	// name falls through to the Global slot if it has one, then to
	// Fallback.
	SlotLocalDyn
	// SlotGlobal reads Globals[Global].
	SlotGlobal
)

// SlotRule tells Resolve where one variable name lives.
type SlotRule struct {
	Kind   SlotKind
	Local  int // index into Locals/Defined (SlotLocal, SlotLocalDyn)
	Global int // index into Globals (SlotGlobal; shadow slot for SlotLocalDyn, -1 = none)
}

// SlotEnv is the reusable slot-backed frame a Slotted expression
// evaluates against. Locals/Defined belong to one flow context; Globals
// is shared by every context of a run. Fallback resolves names without a
// slot rule (system parameters, config-injected globals) and all function
// calls; it may be nil, in which case unresolved names are undefined.
type SlotEnv struct {
	Locals   []float64
	Defined  []bool
	Globals  []float64
	Fallback Env
}

// slotted is the closure form produced by Resolve.
type slotted func(se *SlotEnv) (float64, error)

// Slotted is a compiled expression whose variable references have been
// pre-resolved to slot indices. Produced by Compiled.Resolve.
type Slotted struct {
	fn  slotted
	src string
}

// Resolve re-lowers the compiled expression against a slot layout: rule
// maps each free variable name to its slot. The returned Slotted
// evaluates with zero map lookups for slot-mapped names.
func (c *Compiled) Resolve(rule func(name string) SlotRule) *Slotted {
	return &Slotted{fn: resolveSlots(c.node, rule), src: c.src}
}

// Eval evaluates the slot-resolved expression against the frame.
func (s *Slotted) Eval(se *SlotEnv) (float64, error) { return s.fn(se) }

// String returns the normalized source of the expression.
func (s *Slotted) String() string { return s.src }

func fallbackVar(se *SlotEnv, name string) (float64, error) {
	if se.Fallback != nil {
		if v, ok := se.Fallback.Var(name); ok {
			return v, nil
		}
	}
	return 0, &UndefinedError{Kind: "variable", Name: name}
}

func resolveSlots(n Node, rule func(string) SlotRule) slotted {
	switch x := n.(type) {
	case *Num:
		v := x.Value
		return func(*SlotEnv) (float64, error) { return v, nil }
	case *Var:
		name := x.Name
		r := rule(name)
		switch r.Kind {
		case SlotLocal:
			i := r.Local
			return func(se *SlotEnv) (float64, error) { return se.Locals[i], nil }
		case SlotGlobal:
			i := r.Global
			return func(se *SlotEnv) (float64, error) { return se.Globals[i], nil }
		case SlotLocalDyn:
			li, gi := r.Local, r.Global
			return func(se *SlotEnv) (float64, error) {
				if se.Defined[li] {
					return se.Locals[li], nil
				}
				if gi >= 0 {
					return se.Globals[gi], nil
				}
				return fallbackVar(se, name)
			}
		}
		return func(se *SlotEnv) (float64, error) { return fallbackVar(se, name) }
	case *Call:
		name := x.Name
		args := make([]slotted, len(x.Args))
		for i, a := range x.Args {
			args[i] = resolveSlots(a, rule)
		}
		return func(se *SlotEnv) (float64, error) {
			if se.Fallback == nil {
				return 0, &UndefinedError{Kind: "function", Name: name}
			}
			f, ok := se.Fallback.Func(name)
			if !ok {
				return 0, &UndefinedError{Kind: "function", Name: name}
			}
			vals := make([]float64, len(args))
			for i, a := range args {
				v, err := a(se)
				if err != nil {
					return 0, err
				}
				vals[i] = v
			}
			return f(vals)
		}
	case *Unary:
		sub := resolveSlots(x.X, rule)
		op := x.Op
		return func(se *SlotEnv) (float64, error) {
			v, err := sub(se)
			if err != nil {
				return 0, err
			}
			return applyUnary(op, v)
		}
	case *Binary:
		l, r := resolveSlots(x.L, rule), resolveSlots(x.R, rule)
		switch x.Op {
		case "&&":
			return func(se *SlotEnv) (float64, error) {
				lv, err := l(se)
				if err != nil || !Truthy(lv) {
					return 0, err
				}
				rv, err := r(se)
				if err != nil {
					return 0, err
				}
				return boolVal(Truthy(rv)), nil
			}
		case "||":
			return func(se *SlotEnv) (float64, error) {
				lv, err := l(se)
				if err != nil {
					return 0, err
				}
				if Truthy(lv) {
					return 1, nil
				}
				rv, err := r(se)
				if err != nil {
					return 0, err
				}
				return boolVal(Truthy(rv)), nil
			}
		}
		op := x.Op
		return func(se *SlotEnv) (float64, error) {
			lv, err := l(se)
			if err != nil {
				return 0, err
			}
			rv, err := r(se)
			if err != nil {
				return 0, err
			}
			return applyBinary(op, lv, rv)
		}
	case *Cond:
		c, a, b := resolveSlots(x.C, rule), resolveSlots(x.A, rule), resolveSlots(x.B, rule)
		return func(se *SlotEnv) (float64, error) {
			cv, err := c(se)
			if err != nil {
				return 0, err
			}
			if Truthy(cv) {
				return a(se)
			}
			return b(se)
		}
	}
	// Unreachable with the parser's node set; fail closed if a new node
	// type forgets to extend this switch.
	return func(*SlotEnv) (float64, error) {
		return 0, &UndefinedError{Kind: "variable", Name: "<unresolvable node>"}
	}
}
