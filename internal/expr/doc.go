// Package expr implements the cost-function expression language of the
// performance model.
//
// Cost functions model the execution time of the code block represented by
// a performance modeling element (paper, Section 4 and Figure 7c). They are
// written in a small C-like expression language so that the very same text
// can be (a) emitted verbatim into the generated C++ representation and
// (b) evaluated directly by the model interpreter during simulation.
//
// The language supports:
//
//   - floating point literals (1, 2.5, 1e-3)
//   - variables (model globals/locals, system parameters such as P, and the
//     execute() context parameters uid, pid, tid)
//   - function calls, both builtin math functions (sqrt, log, pow, min, …)
//     and user cost functions defined in the model, which may be composed
//     of other cost functions
//   - arithmetic: + - * / % (remainder as C fmod), unary -
//   - comparisons (== != < <= > >=) and logic (&& || !) with C semantics:
//     comparisons yield 1 or 0, and any non-zero value is true; these are
//     used by branch guards such as "GV > 0"
//   - the conditional operator cond ? a : b
//
// Expressions are parsed once into an AST (Parse) and can then either be
// interpreted against an Env (Node.Eval) or compiled to a closure tree
// (Compile) for repeated evaluation in the simulator's inner loop.
package expr
