package expr

import (
	"fmt"
	"math"
)

// Distribution literals: a tagged value (or cost/count expression) whose
// entire source is a single call to one of the distribution constructors
//
//	exp(mean)            exponential with the given mean
//	normal(mu, sigma)    normal, truncated at zero (sim.Stream.Normal)
//	uniform(lo, hi)      uniform on [lo, hi)
//	empirical(v1, ...)   uniform choice over the listed values
//
// denotes a random draw instead of a deterministic value, following the
// stochastic extension of the UML performance profile (see PAPERS.md,
// "Generating a Performance Stochastic Model from UML Specifications").
//
// Only the whole-source form is a distribution: `exp(2)` as a complete
// cost expression is an exponential draw with mean 2, while `1 + exp(2)`
// or `exp(2)` inside a guard keeps the builtin e^x meaning. Arguments are
// ordinary expressions evaluated at sample time (so `exp(c*N)` is legal).

// DistKind identifies the distribution family of a literal.
type DistKind int

const (
	DistExp DistKind = iota
	DistNormal
	DistUniform
	DistEmpirical
)

// String returns the constructor name of the family.
func (k DistKind) String() string {
	switch k {
	case DistExp:
		return "exp"
	case DistNormal:
		return "normal"
	case DistUniform:
		return "uniform"
	case DistEmpirical:
		return "empirical"
	}
	return fmt.Sprintf("DistKind(%d)", int(k))
}

// distArity gives the required argument count per family; -1 means "one
// or more".
var distArity = map[string]struct {
	kind  DistKind
	arity int
}{
	"exp":       {DistExp, 1},
	"normal":    {DistNormal, 2},
	"uniform":   {DistUniform, 2},
	"empirical": {DistEmpirical, -1},
}

// Sampler is the seeded random-draw interface a distribution samples
// from. *sim.Stream satisfies it structurally, so the interp and lowered
// backends both draw from the engine's existing seed stream.
type Sampler interface {
	Float64() float64
	Uniform(a, b float64) float64
	Exponential(mean float64) float64
	Normal(mean, sd float64) float64
}

// Dist is a parsed distribution literal with compiled argument
// expressions.
type Dist struct {
	Kind DistKind
	Args []*Compiled
	src  string
}

// ParseDist reports whether src is a distribution literal — the entire
// source is one top-level call to a distribution constructor with the
// right arity — and parses it if so. A false return means src is an
// ordinary expression (including sources that do not parse at all; those
// surface their error through the normal expression path).
//
// Callers that support model-defined functions should skip the
// distribution reading when the model defines a function of the same
// name (NewLibrary already forbids shadowing the `exp` builtin, so only
// normal/uniform/empirical can be shadowed).
func ParseDist(src string) (*Dist, bool) {
	n, err := Parse(src)
	if err != nil {
		return nil, false
	}
	name, argNodes, ok := DistCall(n)
	if !ok {
		return nil, false
	}
	args := make([]*Compiled, len(argNodes))
	for i, a := range argNodes {
		args[i] = Compile(a)
	}
	return &Dist{Kind: distArity[name].kind, Args: args, src: src}, true
}

// DistCall reports whether a parsed node is a distribution literal — a
// single top-level call to a distribution constructor with the right
// arity — returning the constructor name and the argument nodes. It is
// the AST-level half of ParseDist, for callers (like the checker) that
// want to validate the argument expressions themselves.
func DistCall(n Node) (name string, args []Node, ok bool) {
	call, isCall := n.(*Call)
	if !isCall {
		return "", nil, false
	}
	fam, known := distArity[call.Name]
	if !known {
		return "", nil, false
	}
	if fam.arity >= 0 && len(call.Args) != fam.arity {
		return "", nil, false
	}
	if fam.arity < 0 && len(call.Args) == 0 {
		return "", nil, false
	}
	return call.Name, call.Args, true
}

// String returns the literal's source.
func (d *Dist) String() string { return d.src }

// evalArgs evaluates the argument expressions against env.
func (d *Dist) evalArgs(env Env) ([]float64, error) {
	vals := make([]float64, len(d.Args))
	for i, a := range d.Args {
		v, err := a.Eval(env)
		if err != nil {
			return nil, fmt.Errorf("distribution %s: %w", d.src, err)
		}
		vals[i] = v
	}
	return vals, nil
}

// Sample evaluates the arguments against env and draws one value from s.
// Every call consumes exactly one draw from the sampler (the sampler
// itself may consume more underlying randomness, deterministically).
func (d *Dist) Sample(env Env, s Sampler) (float64, error) {
	vals, err := d.evalArgs(env)
	if err != nil {
		return 0, err
	}
	return drawDist(d.Kind, vals, s), nil
}

// Moments evaluates the arguments against env and returns the closed-form
// mean and variance of the draw, matching the sampling semantics exactly
// (in particular the truncation at zero of Normal draws).
func (d *Dist) Moments(env Env) (mean, variance float64, err error) {
	vals, err := d.evalArgs(env)
	if err != nil {
		return 0, 0, err
	}
	mean, variance = distMoments(d.Kind, vals)
	return mean, variance, nil
}

// Resolve pre-resolves the argument expressions against a slot layout,
// mirroring Compiled.Resolve, for the lowered backend.
func (d *Dist) Resolve(rule func(name string) SlotRule) *SlotDist {
	args := make([]*Slotted, len(d.Args))
	for i, a := range d.Args {
		args[i] = a.Resolve(rule)
	}
	return &SlotDist{Kind: d.Kind, Args: args, src: d.src}
}

// SlotDist is a distribution literal whose argument expressions have been
// slot-resolved. Produced by Dist.Resolve.
type SlotDist struct {
	Kind DistKind
	Args []*Slotted
	src  string
}

// String returns the literal's source.
func (d *SlotDist) String() string { return d.src }

// Sample evaluates the arguments against the frame and draws one value
// from s, bit-identical to Dist.Sample over the same argument values and
// sampler state.
func (d *SlotDist) Sample(se *SlotEnv, s Sampler) (float64, error) {
	vals := make([]float64, len(d.Args))
	for i, a := range d.Args {
		v, err := a.Eval(se)
		if err != nil {
			return 0, fmt.Errorf("distribution %s: %w", d.src, err)
		}
		vals[i] = v
	}
	return drawDist(d.Kind, vals, s), nil
}

// drawDist performs the single draw. The per-family sampler calls mirror
// sim.Stream's semantics one for one so both backends consume the seed
// stream identically.
func drawDist(kind DistKind, vals []float64, s Sampler) float64 {
	switch kind {
	case DistExp:
		return s.Exponential(vals[0])
	case DistNormal:
		return s.Normal(vals[0], vals[1])
	case DistUniform:
		return s.Uniform(vals[0], vals[1])
	case DistEmpirical:
		i := int(s.Float64() * float64(len(vals)))
		if i >= len(vals) {
			i = len(vals) - 1
		}
		return vals[i]
	}
	return 0
}

// distMoments returns the exact mean and variance of one draw given the
// evaluated arguments.
func distMoments(kind DistKind, vals []float64) (mean, variance float64) {
	switch kind {
	case DistExp:
		m := vals[0]
		return m, m * m
	case DistNormal:
		return censoredNormalMoments(vals[0], vals[1])
	case DistUniform:
		lo, hi := vals[0], vals[1]
		w := hi - lo
		return (lo + hi) / 2, w * w / 12
	case DistEmpirical:
		var sum float64
		for _, v := range vals {
			sum += v
		}
		m := sum / float64(len(vals))
		var ss float64
		for _, v := range vals {
			d := v - m
			ss += d * d
		}
		return m, ss / float64(len(vals))
	}
	return 0, 0
}

// censoredNormalMoments gives the exact moments of max(0, N(mu, sigma)),
// the value sim.Stream.Normal actually draws. With z = mu/sigma,
// phi the standard normal density and Phi its CDF:
//
//	E[Y]  = mu*Phi(z) + sigma*phi(z)
//	E[Y²] = (mu²+sigma²)*Phi(z) + mu*sigma*phi(z)
func censoredNormalMoments(mu, sigma float64) (mean, variance float64) {
	if sigma <= 0 {
		// Degenerate: the draw is deterministically max(0, mu).
		return math.Max(0, mu), 0
	}
	z := mu / sigma
	cdf := 0.5 * (1 + math.Erf(z/math.Sqrt2))
	pdf := math.Exp(-z*z/2) / math.Sqrt(2*math.Pi)
	mean = mu*cdf + sigma*pdf
	e2 := (mu*mu+sigma*sigma)*cdf + mu*sigma*pdf
	variance = e2 - mean*mean
	if variance < 0 {
		variance = 0
	}
	return mean, variance
}
