package expr

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFoldConstants(t *testing.T) {
	cases := map[string]string{
		"1 + 2*3":        "7",
		"8 * 1024":       "8192",
		"sqrt(9) + 1":    "4",
		"-(2 + 3)":       "-5",
		"1 < 2":          "1",
		"1 > 2 && x":     "0", // short-circuit decided by left
		"1 < 2 || x":     "1",
		"0 && x":         "0",
		"1 ? 10 : x":     "10", // constant condition selects arm
		"0 ? x : 20":     "20",
		"10 / 2":         "5",
		"7 % 3":          "1",
		"x + (2*3)":      "x + 6",
		"(1+1) * x":      "2 * x",
		"pow(2, 10) * n": "1024 * n",
		"min(1, 2) + x":  "1 + x",
	}
	for src, want := range cases {
		n := MustParse(src)
		if got := Fold(n).String(); got != want {
			t.Errorf("Fold(%q) = %q, want %q", src, got, want)
		}
	}
}

func TestFoldPreservesErrors(t *testing.T) {
	// Division by a constant zero must not fold away the error.
	for _, src := range []string{"1 / 0", "1 % 0", "x / 0"} {
		n := Fold(MustParse(src))
		if _, ok := n.(*Num); ok {
			t.Errorf("Fold(%q) should not produce a constant", src)
		}
		env := NewMapEnv()
		env.Set("x", 1)
		if _, err := n.Eval(env); err == nil {
			t.Errorf("Fold(%q) lost the runtime error", src)
		}
	}
	// User functions must not fold (they are model-defined).
	n := Fold(MustParse("F(1, 2)"))
	if _, ok := n.(*Num); ok {
		t.Error("user function call should not fold")
	}
}

func TestFoldVariablesUntouched(t *testing.T) {
	n := Fold(MustParse("a * b + c"))
	if got := n.String(); got != "(a * b) + c" {
		t.Errorf("variable expression altered: %q", got)
	}
}

// randomExpr builds a random expression over variables x and y.
func randomExpr(r *rand.Rand, depth int) string {
	if depth <= 0 || r.Intn(4) == 0 {
		switch r.Intn(3) {
		case 0:
			return fmt.Sprintf("%d", r.Intn(20))
		case 1:
			return "x"
		default:
			return "y"
		}
	}
	ops := []string{"+", "-", "*", "/", "%", "<", "<=", ">", ">=", "==", "!=", "&&", "||"}
	op := ops[r.Intn(len(ops))]
	l := randomExpr(r, depth-1)
	rr := randomExpr(r, depth-1)
	switch r.Intn(6) {
	case 0:
		return fmt.Sprintf("-(%s)", l)
	case 1:
		return fmt.Sprintf("!(%s)", l)
	case 2:
		return fmt.Sprintf("(%s) ? (%s) : (%s)", l, rr, randomExpr(r, depth-2))
	case 3:
		return fmt.Sprintf("min((%s), (%s))", l, rr)
	default:
		return fmt.Sprintf("(%s) %s (%s)", l, op, rr)
	}
}

// TestQuickFoldEquivalence: folding never changes the value (or the
// presence of an error) for arbitrary expressions and environments.
func TestQuickFoldEquivalence(t *testing.T) {
	f := func(seed int64, x, y float64) bool {
		if math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
			return true
		}
		r := rand.New(rand.NewSource(seed))
		src := randomExpr(r, 4)
		n, err := Parse(src)
		if err != nil {
			t.Logf("generator produced unparsable %q", src)
			return false
		}
		env := NewMapEnv()
		env.Set("x", x)
		env.Set("y", y)
		full := Chain{env, Builtins}
		v1, err1 := n.Eval(full)
		v2, err2 := Fold(n).Eval(full)
		if (err1 == nil) != (err2 == nil) {
			t.Logf("%q: error mismatch: %v vs %v", src, err1, err2)
			return false
		}
		if err1 != nil {
			return true
		}
		if v1 != v2 && !(math.IsNaN(v1) && math.IsNaN(v2)) {
			t.Logf("%q: %v vs %v", src, v1, v2)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
