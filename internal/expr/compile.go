package expr

// Compiled is a pre-lowered expression: a closure tree that avoids the
// per-node type switch of interpreted evaluation. The simulator compiles
// every cost function and guard once before a run and evaluates the
// compiled form in its inner loop (ablation: BenchmarkExpr in bench_test.go
// measures interpreted vs compiled evaluation).
type Compiled struct {
	fn   compiled
	src  string
	node Node
}

// Compile lowers a parsed expression to its closure form.
func Compile(n Node) *Compiled {
	return &Compiled{fn: n.compile(), src: n.String(), node: n}
}

// CompileString parses and lowers src.
func CompileString(src string) (*Compiled, error) {
	n, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Compile(n), nil
}

// CompileStringFolded parses src, constant-folds it, and lowers the
// result. The simulator compiles all model expressions this way; folding
// is semantics-preserving (see TestQuickFoldEquivalence).
func CompileStringFolded(src string) (*Compiled, error) {
	n, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Compile(Fold(n)), nil
}

// Eval evaluates the compiled expression in env.
func (c *Compiled) Eval(env Env) (float64, error) { return c.fn(env) }

// String returns the normalized source of the compiled expression.
func (c *Compiled) String() string { return c.src }

func (n *Num) compile() compiled {
	v := n.Value
	return func(Env) (float64, error) { return v, nil }
}

func (n *Var) compile() compiled {
	name := n.Name
	return func(env Env) (float64, error) {
		v, ok := env.Var(name)
		if !ok {
			return 0, &UndefinedError{Kind: "variable", Name: name}
		}
		return v, nil
	}
}

func (n *Call) compile() compiled {
	name := n.Name
	args := make([]compiled, len(n.Args))
	for i, a := range n.Args {
		args[i] = a.compile()
	}
	return func(env Env) (float64, error) {
		f, ok := env.Func(name)
		if !ok {
			return 0, &UndefinedError{Kind: "function", Name: name}
		}
		vals := make([]float64, len(args))
		for i, a := range args {
			v, err := a(env)
			if err != nil {
				return 0, err
			}
			vals[i] = v
		}
		return f(vals)
	}
}

func (n *Unary) compile() compiled {
	x := n.X.compile()
	op := n.Op
	return func(env Env) (float64, error) {
		v, err := x(env)
		if err != nil {
			return 0, err
		}
		return applyUnary(op, v)
	}
}

func (n *Binary) compile() compiled {
	l, r := n.L.compile(), n.R.compile()
	switch n.Op {
	case "&&":
		return func(env Env) (float64, error) {
			lv, err := l(env)
			if err != nil || !Truthy(lv) {
				return 0, err
			}
			rv, err := r(env)
			if err != nil {
				return 0, err
			}
			return boolVal(Truthy(rv)), nil
		}
	case "||":
		return func(env Env) (float64, error) {
			lv, err := l(env)
			if err != nil {
				return 0, err
			}
			if Truthy(lv) {
				return 1, nil
			}
			rv, err := r(env)
			if err != nil {
				return 0, err
			}
			return boolVal(Truthy(rv)), nil
		}
	}
	op := n.Op
	return func(env Env) (float64, error) {
		lv, err := l(env)
		if err != nil {
			return 0, err
		}
		rv, err := r(env)
		if err != nil {
			return 0, err
		}
		return applyBinary(op, lv, rv)
	}
}

func (n *Cond) compile() compiled {
	c, a, b := n.C.compile(), n.A.compile(), n.B.compile()
	return func(env Env) (float64, error) {
		cv, err := c(env)
		if err != nil {
			return 0, err
		}
		if Truthy(cv) {
			return a(env)
		}
		return b(env)
	}
}
