// Package dot renders performance models as Graphviz DOT documents. It is
// a second ContentHandler implementation behind the Figure 6 traversal
// machinery, demonstrating the paper's extension claim ("the extension of
// Performance Prophet for the generation of a specific model
// representation involves only a specific implementation of the
// ContentHandler interface") and standing in for Teuta's drawing space as
// the way to *see* a model.
//
// Each diagram becomes a cluster; node shapes follow the UML activity
// diagram notation (diamond decisions, bars for fork/join, a dot for the
// initial node, a double circle for finals), and stereotyped elements show
// their guillemet notation.
package dot

import (
	"fmt"
	"strings"

	"prophet/internal/traverse"
	"prophet/internal/uml"
)

// Handler builds the DOT text during a traversal.
type Handler struct {
	sb      strings.Builder
	started bool
	done    bool
}

// NewHandler returns a fresh DOT ContentHandler.
func NewHandler() *Handler { return &Handler{} }

// Visit implements traverse.ContentHandler.
func (h *Handler) Visit(ev traverse.Event) error {
	switch ev.Phase {
	case traverse.EnterModel:
		h.sb.Reset()
		h.done = false
		h.started = true
		fmt.Fprintf(&h.sb, "digraph %q {\n", ev.Element.Name())
		h.sb.WriteString("  rankdir=TB;\n  fontname=\"Helvetica\";\n  node [fontname=\"Helvetica\"];\n")
	case traverse.EnterDiagram:
		d := ev.Element.(*uml.Diagram)
		fmt.Fprintf(&h.sb, "  subgraph \"cluster_%s\" {\n    label=%q;\n", d.ID(), d.Name())
	case traverse.VisitNode:
		n := ev.Element.(uml.Node)
		fmt.Fprintf(&h.sb, "    %q [%s];\n", n.ID(), nodeAttrs(n))
	case traverse.VisitEdge:
		e := ev.Element.(*uml.Edge)
		attrs := ""
		if e.Guard != "" {
			attrs = fmt.Sprintf(" [label=%q]", "["+e.Guard+"]")
		}
		fmt.Fprintf(&h.sb, "    %q -> %q%s;\n", e.From(), e.To(), attrs)
	case traverse.LeaveDiagram:
		h.sb.WriteString("  }\n")
	case traverse.LeaveModel:
		h.sb.WriteString("}\n")
		h.done = true
	}
	return nil
}

// Output returns the DOT text and whether the traversal completed.
func (h *Handler) Output() (string, bool) { return h.sb.String(), h.done }

// nodeAttrs picks shape and label per node kind.
func nodeAttrs(n uml.Node) string {
	label := n.Name()
	if s := n.Stereotype(); s != "" {
		label = fmt.Sprintf("%s\\n«%s»", n.Name(), s)
	}
	switch n.Kind() {
	case uml.KindInitial:
		return `shape=circle, style=filled, fillcolor=black, label="", width=0.15, fixedsize=true`
	case uml.KindFinal:
		return `shape=doublecircle, style=filled, fillcolor=black, label="", width=0.12, fixedsize=true`
	case uml.KindDecision, uml.KindMerge:
		return fmt.Sprintf(`shape=diamond, label="", tooltip=%q`, n.Kind().String())
	case uml.KindFork, uml.KindJoin:
		return `shape=box, style=filled, fillcolor=black, label="", height=0.06, width=1.2, fixedsize=true`
	case uml.KindActivity:
		a := n.(*uml.ActivityNode)
		return fmt.Sprintf("shape=box, style=rounded, peripheries=2, label=%q, tooltip=%q",
			label, "content: "+a.Body)
	case uml.KindLoop:
		l := n.(*uml.LoopNode)
		return fmt.Sprintf("shape=box3d, label=%q", fmt.Sprintf("%s\\n[%s = 1,%s]", label, l.Var, l.Count))
	default: // action
		extra := ""
		if a, ok := n.(*uml.ActionNode); ok && a.CostFunc != "" {
			extra = "\\nT = " + a.CostFunc
		}
		return fmt.Sprintf("shape=box, style=rounded, label=%q", label+extra)
	}
}

// Render produces the DOT text for a model in one call.
func Render(m *uml.Model) (string, error) {
	h := NewHandler()
	if err := traverse.Run(m, h); err != nil {
		return "", err
	}
	out, done := h.Output()
	if !done {
		return "", fmt.Errorf("dot: traversal did not complete")
	}
	return out, nil
}
