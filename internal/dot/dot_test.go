package dot

import (
	"strings"
	"testing"

	"prophet/internal/samples"
	"prophet/internal/traverse"
)

func TestRenderSample(t *testing.T) {
	out, err := Render(samples.Sample())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`digraph "sample" {`,
		`label="main"`,
		`label="SA"`,
		"«action+»",
		"«activity+»",
		"shape=diamond",
		`[label="[GV > 0]"]`,
		`[label="[else]"]`,
		"T = FA1()",
		"}",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
	if !strings.HasSuffix(strings.TrimSpace(out), "}") {
		t.Errorf("DOT not closed")
	}
}

func TestRenderKernel6Detailed(t *testing.T) {
	out, err := Render(samples.Kernel6Detailed())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "shape=box3d") {
		t.Errorf("loop nodes should use box3d:\n%s", out)
	}
	if strings.Count(out, "subgraph") != 4 {
		t.Errorf("want 4 diagram clusters, got %d", strings.Count(out, "subgraph"))
	}
}

func TestHandlerWithBothNavigators(t *testing.T) {
	m := samples.Sample()
	outs := make([]string, 0, 2)
	for _, nav := range []traverse.Navigator{
		traverse.NewRecursiveNavigator(), traverse.NewStackNavigator(),
	} {
		h := NewHandler()
		if err := traverse.NewTraverser().Traverse(m, nav, h); err != nil {
			t.Fatal(err)
		}
		out, done := h.Output()
		if !done {
			t.Fatal("handler incomplete")
		}
		outs = append(outs, out)
	}
	if outs[0] != outs[1] {
		t.Error("DOT output should not depend on the navigator implementation")
	}
}

func TestHandlerReusable(t *testing.T) {
	h := NewHandler()
	if err := traverse.Run(samples.Kernel6(), h); err != nil {
		t.Fatal(err)
	}
	first, _ := h.Output()
	if err := traverse.Run(samples.Kernel6(), h); err != nil {
		t.Fatal(err)
	}
	second, _ := h.Output()
	if first != second {
		t.Error("handler should reset between traversals")
	}
}

func TestOutputBeforeRun(t *testing.T) {
	h := NewHandler()
	if out, done := h.Output(); done || out != "" {
		t.Error("fresh handler should be empty and not done")
	}
}

func TestGuardEscaping(t *testing.T) {
	m := samples.Sample()
	out, err := Render(m)
	if err != nil {
		t.Fatal(err)
	}
	// DOT requires quotes around labels with spaces; %q escaping handles
	// embedded quotes. Sanity: no raw unescaped newline inside a label.
	for _, line := range strings.Split(out, "\n") {
		if strings.Count(line, `"`)%2 != 0 {
			t.Errorf("unbalanced quotes in line: %s", line)
		}
	}
}
