package estimator

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"prophet/internal/builder"
	"prophet/internal/machine"
	"prophet/internal/samples"
	"prophet/internal/uml"
)

// slowModel executes `iters` tiny hold events: long enough to outlive a
// short deadline, quick to stop once the engine is interrupted.
func slowModel(t *testing.T, iters int) *uml.Model {
	t.Helper()
	b := builder.New("slow")
	b.Function("F", nil, "0.001")
	d := b.Diagram("main") // first diagram added becomes the main one
	d.Initial()
	d.Loop("L", itoa(iters), "body")
	d.Final()
	d.Chain("initial", "L", "final")
	body := b.Diagram("body")
	body.Initial()
	body.Action("W").Cost("F()")
	body.Final()
	body.Chain("initial", "W", "final")
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

func TestEstimatePreCancelledContext(t *testing.T) {
	m := slowModel(t, 5_000_000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := New().Estimate(Request{Model: m, Context: ctx, MaxSteps: 100_000_000})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Errorf("pre-cancelled Estimate took %v, want immediate return", d)
	}
}

func TestEstimateShortDeadlineReturnsPromptly(t *testing.T) {
	m := slowModel(t, 20_000_000)
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := New().Estimate(Request{Model: m, Context: ctx, MaxSteps: 100_000_000})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("deadline took %v to surface", d)
	}
	// No goroutine leak: the simulation processes and the context watcher
	// must all unwind once the run is interrupted.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Mutating a model after it was compiled must miss the cache: the key is
// the canonical XMI content hash, not the pointer.
func TestCompileCachedDetectsMutation(t *testing.T) {
	e := New()
	m := samples.Sample()
	req := Request{Model: m, Params: machine.SystemParams{Nodes: 1, ProcessorsPerNode: 2, Processes: 4, Threads: 1}}
	pr, err := e.CompileCached(m)
	if err != nil {
		t.Fatal(err)
	}
	base, err := e.EstimateCompiled(pr, req)
	if err != nil {
		t.Fatal(err)
	}
	hits0, misses0 := e.CacheStats()
	if misses0 != 1 {
		t.Fatalf("first compile should be one miss, got hits=%d misses=%d", hits0, misses0)
	}

	// Same content, same pointer: a hit.
	if _, err := e.CompileCached(m); err != nil {
		t.Fatal(err)
	}
	hits1, misses1 := e.CacheStats()
	if hits1 != hits0+1 || misses1 != misses0 {
		t.Fatalf("unchanged model recompiled: hits %d→%d misses %d→%d", hits0, hits1, misses0, misses1)
	}

	// Mutate an action cost in place. The stale pointer-keyed cache would
	// happily serve the old program here.
	var mutated bool
	for _, d := range m.Diagrams() {
		for _, n := range d.Nodes() {
			if a, ok := n.(*uml.ActionNode); ok && a.CostFunc == "FSA1()" {
				a.CostFunc = "FA2()" // 5.0 → 3*P = 12: makespan must shift
				mutated = true
				break
			}
		}
		if mutated {
			break
		}
	}
	if !mutated {
		t.Fatal("sample model has no action with a cost function to mutate")
	}

	pr2, err := e.CompileCached(m)
	if err != nil {
		t.Fatal(err)
	}
	hits2, misses2 := e.CacheStats()
	if misses2 != misses1+1 {
		t.Fatalf("mutation did not trigger recompilation: hits %d→%d misses %d→%d",
			hits1, hits2, misses1, misses2)
	}
	if pr2 == pr {
		t.Fatal("mutated model served the stale compiled program")
	}
	changed, err := e.EstimateCompiled(pr2, req)
	if err != nil {
		t.Fatal(err)
	}
	if changed.Makespan == base.Makespan {
		t.Errorf("makespan unchanged (%g) after cost mutation: stale program served", base.Makespan)
	}
}

func TestCompileCachedSameContentSharesProgram(t *testing.T) {
	e := New()
	p1, err := e.CompileCached(samples.Sample())
	if err != nil {
		t.Fatal(err)
	}
	// A different *uml.Model pointer with identical content hits the
	// same cache entry.
	p2, err := e.CompileCached(samples.Sample())
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("identical content compiled twice: cache keyed by pointer, not content")
	}
}

func TestInvalidateCacheByContent(t *testing.T) {
	e := New()
	m := samples.Sample()
	p1, err := e.CompileCached(m)
	if err != nil {
		t.Fatal(err)
	}
	e.InvalidateCache(m)
	p2, err := e.CompileCached(m)
	if err != nil {
		t.Fatal(err)
	}
	if p1 == p2 {
		t.Error("InvalidateCache left the entry in place")
	}
	e.InvalidateCache(nil) // clears everything; must not panic
}
