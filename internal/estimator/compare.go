package estimator

import (
	"fmt"
	"math"

	"prophet/internal/uml"
)

// ComparePoint is one sample of a two-model comparison sweep.
type ComparePoint struct {
	Processes int
	// MakespanA and MakespanB are the two predictions.
	MakespanA float64
	MakespanB float64
	// Winner is "A", "B" or "tie".
	Winner string
}

// Comparison is the outcome of CompareModels.
type Comparison struct {
	NameA, NameB string
	Points       []ComparePoint
	// Crossovers lists the process counts where the winner flips relative
	// to the previous point.
	Crossovers []int
}

// CompareModels evaluates two alternative designs of the same program
// across process counts and reports who wins where — the "design
// decisions can be influenced without time-consuming modifications of
// large portions of an implemented program" use case of the paper's
// introduction. Both models are evaluated under req's parameters and
// globals; req.Model is ignored.
func (e *Estimator) CompareModels(a, b *uml.Model, req Request, counts []int) (*Comparison, error) {
	if a == nil || b == nil {
		return nil, fmt.Errorf("estimator: CompareModels needs two models")
	}
	reqA := req
	reqA.Model = a
	ptsA, err := e.SweepProcesses(reqA, counts)
	if err != nil {
		return nil, fmt.Errorf("estimator: model %q: %w", a.Name(), err)
	}
	reqB := req
	reqB.Model = b
	ptsB, err := e.SweepProcesses(reqB, counts)
	if err != nil {
		return nil, fmt.Errorf("estimator: model %q: %w", b.Name(), err)
	}
	cmp := &Comparison{NameA: a.Name(), NameB: b.Name()}
	prevWinner := ""
	for i := range counts {
		pt := ComparePoint{
			Processes: counts[i],
			MakespanA: ptsA[i].Makespan,
			MakespanB: ptsB[i].Makespan,
		}
		// Relative tolerance: accumulated floating-point error between two
		// evaluations of equivalent models must not manufacture a winner.
		tol := 1e-9 * math.Max(math.Max(pt.MakespanA, pt.MakespanB), 1e-300)
		switch {
		case pt.MakespanA < pt.MakespanB-tol:
			pt.Winner = "A"
		case pt.MakespanB < pt.MakespanA-tol:
			pt.Winner = "B"
		default:
			pt.Winner = "tie"
		}
		if prevWinner != "" && pt.Winner != "tie" && prevWinner != "tie" && pt.Winner != prevWinner {
			cmp.Crossovers = append(cmp.Crossovers, counts[i])
		}
		if pt.Winner != "tie" {
			prevWinner = pt.Winner
		}
		cmp.Points = append(cmp.Points, pt)
	}
	return cmp, nil
}
