package estimator

import (
	"fmt"

	"prophet/internal/interp"
	"prophet/internal/lower"
	"prophet/internal/xmi"
)

// Backend selects the execution engine a simulation runs on.
type Backend int

const (
	// BackendAuto picks the best available backend (currently lowered).
	BackendAuto Backend = iota
	// BackendInterp forces the tree-walking interpreter.
	BackendInterp
	// BackendLowered forces the flat lowered program (see internal/lower).
	BackendLowered
)

// effective resolves Auto to the backend actually used.
func (b Backend) effective() Backend {
	if b == BackendAuto {
		return BackendLowered
	}
	return b
}

func (b Backend) String() string {
	switch b.effective() {
	case BackendInterp:
		return "interp"
	default:
		return "lowered"
	}
}

// ParseBackend maps the external knob value to a Backend. The empty
// string and "auto" select the default.
func ParseBackend(s string) (Backend, error) {
	switch s {
	case "", "auto":
		return BackendAuto, nil
	case "interp":
		return BackendInterp, nil
	case "lowered":
		return BackendLowered, nil
	}
	return BackendAuto, fmt.Errorf("estimator: unknown backend %q (want auto, interp or lowered)", s)
}

// loweredFor returns the lowered form of pr, lowering it on first use.
// The cache is keyed by the model's canonical-XMI content hash
// (xmi.Hash) — the same key the compile cache uses — NOT by program
// identity: two programs compiled from identical content (Compile next
// to CompileCached, or a recompile after cache eviction) share one
// lowered program instead of lowering twice and holding two entries. A
// per-pointer memo skips re-hashing a program seen before; content that
// cannot be canonicalized lowers fresh, uncached, rather than risking
// an identity-aliased stale hit.
func (e *Estimator) loweredFor(pr *interp.Program) (lp *lower.Program, cached bool) {
	e.lowMu.Lock()
	defer e.lowMu.Unlock()
	key, ok := e.lowKeys[pr]
	if !ok {
		var err error
		key, err = xmi.Hash(pr.Model())
		if err != nil {
			return lower.Lower(pr), false
		}
		if e.lowKeys == nil {
			e.lowKeys = map[*interp.Program]string{}
		}
		// The memo tracks live program pointers; reset it wholesale if it
		// ever outgrows the lowered cache it fronts (a mutate-recompile
		// loop leaves dead pointers behind).
		if len(e.lowKeys) >= 2*maxCachedPrograms {
			e.lowKeys = map[*interp.Program]string{}
		}
		e.lowKeys[pr] = key
	}
	if lp, ok := e.lowered[key]; ok {
		return lp, true
	}
	lp = lower.Lower(pr)
	if e.lowered == nil {
		e.lowered = map[string]*lower.Program{}
	}
	e.lowered[key] = lp
	e.lowOrder = append(e.lowOrder, key)
	for len(e.lowOrder) > maxCachedPrograms {
		delete(e.lowered, e.lowOrder[0])
		e.lowOrder = e.lowOrder[1:]
	}
	return lp, false
}
