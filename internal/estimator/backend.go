package estimator

import (
	"fmt"

	"prophet/internal/interp"
	"prophet/internal/lower"
)

// Backend selects the execution engine a simulation runs on.
type Backend int

const (
	// BackendAuto picks the best available backend (currently lowered).
	BackendAuto Backend = iota
	// BackendInterp forces the tree-walking interpreter.
	BackendInterp
	// BackendLowered forces the flat lowered program (see internal/lower).
	BackendLowered
)

// effective resolves Auto to the backend actually used.
func (b Backend) effective() Backend {
	if b == BackendAuto {
		return BackendLowered
	}
	return b
}

func (b Backend) String() string {
	switch b.effective() {
	case BackendInterp:
		return "interp"
	default:
		return "lowered"
	}
}

// ParseBackend maps the external knob value to a Backend. The empty
// string and "auto" select the default.
func ParseBackend(s string) (Backend, error) {
	switch s {
	case "", "auto":
		return BackendAuto, nil
	case "interp":
		return BackendInterp, nil
	case "lowered":
		return BackendLowered, nil
	}
	return BackendAuto, fmt.Errorf("estimator: unknown backend %q (want auto, interp or lowered)", s)
}

// loweredFor returns the lowered form of pr, lowering it on first use.
// The cache is keyed by program identity: programs come out of the
// content-hashed compile cache, so identity tracks content, and a
// program compiled fresh (outside the cache) simply lowers again.
func (e *Estimator) loweredFor(pr *interp.Program) (lp *lower.Program, cached bool) {
	e.lowMu.Lock()
	defer e.lowMu.Unlock()
	if lp, ok := e.lowered[pr]; ok {
		return lp, true
	}
	lp = lower.Lower(pr)
	if e.lowered == nil {
		e.lowered = map[*interp.Program]*lower.Program{}
	}
	e.lowered[pr] = lp
	e.lowOrder = append(e.lowOrder, pr)
	for len(e.lowOrder) > maxCachedPrograms {
		delete(e.lowered, e.lowOrder[0])
		e.lowOrder = e.lowOrder[1:]
	}
	return lp, false
}
