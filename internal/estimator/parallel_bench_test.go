package estimator

import (
	"fmt"
	"testing"

	"prophet/internal/builder"
)

// benchModel builds the stochastic query-mix workload used by the runner
// benchmarks: a loop of weighted cache hits/misses, enough simulated
// events per run that fan-out overhead is amortized realistically.
func benchModel(b *testing.B) *builder.ModelBuilder {
	b.Helper()
	mb := builder.New("bench-query-mix")
	mb.Global("hitCost", "double").Global("missCost", "double")
	d := mb.Diagram("main")
	d.Initial()
	d.Loop("Queries", "200", "one").Var("q")
	d.Final()
	d.Chain("initial", "Queries", "final")
	one := mb.Diagram("one")
	one.Initial()
	one.Decision("cache")
	one.Action("Hit").Cost("hitCost")
	one.Action("Miss").Cost("missCost")
	one.Merge("done")
	one.Final()
	one.Flow("initial", "cache")
	one.FlowWeighted("cache", "Hit", 0.85)
	one.FlowWeighted("cache", "Miss", 0.15)
	one.Flow("Hit", "done")
	one.Flow("Miss", "done")
	one.Flow("done", "final")
	return mb
}

// BenchmarkMonteCarloWorkers measures a 64-run Monte Carlo batch at
// several worker counts. On multi-core hardware the wall-clock ns/op
// should fall roughly linearly with workers (the runs are independent);
// allocs/op stays flat because parallelism adds no per-run allocation.
func BenchmarkMonteCarloWorkers(b *testing.B) {
	m, err := benchModel(b).Build()
	if err != nil {
		b.Fatal(err)
	}
	e := New()
	globals := map[string]float64{"hitCost": 100e-6, "missCost": 10e-3}
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := e.MonteCarlo(Request{
					Model: m, Globals: globals, Parallel: workers,
				}, 64); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSensitivityWorkers measures the sensitivity fan-out (1 + 2
// jobs per variable) at 1 vs 4 workers.
func BenchmarkSensitivityWorkers(b *testing.B) {
	m, err := benchModel(b).Build()
	if err != nil {
		b.Fatal(err)
	}
	e := New()
	globals := map[string]float64{"hitCost": 100e-6, "missCost": 10e-3}
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := e.Sensitivity(Request{
					Model: m, Globals: globals, Parallel: workers,
				}, []string{"hitCost", "missCost"}, 0.05); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
