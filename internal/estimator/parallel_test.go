package estimator

import (
	"context"
	"runtime"
	"testing"
	"time"

	"prophet/internal/samples"
)

// TestMonteCarloBitIdenticalAcrossWorkerCounts is the determinism
// guarantee of the batch runtime: the same model and seeds evaluated at
// -parallel 1, 4 and 16 must produce a bit-identical distribution
// summary. Equality here is exact float equality on purpose.
func TestMonteCarloBitIdenticalAcrossWorkerCounts(t *testing.T) {
	b := newWeightedBuilder(t)
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	e := New()
	base, err := e.MonteCarlo(Request{Model: m, Parallel: 1}, 128)
	if err != nil {
		t.Fatal(err)
	}
	if base.Std == 0 {
		t.Fatal("weighted model should have spread; the test needs a stochastic workload")
	}
	for _, workers := range []int{4, 16} {
		got, err := e.MonteCarlo(Request{Model: m, Parallel: workers}, 128)
		if err != nil {
			t.Fatalf("parallel=%d: %v", workers, err)
		}
		if *got != *base {
			t.Errorf("parallel=%d: result %+v differs from sequential %+v", workers, *got, *base)
		}
	}
}

// TestSensitivityBitIdenticalAcrossWorkerCounts: every SensitivityPoint
// field must match exactly at any worker count.
func TestSensitivityBitIdenticalAcrossWorkerCounts(t *testing.T) {
	req := Request{
		Model:   samples.Kernel6(),
		Globals: map[string]float64{"N": 500, "M": 4, "c": 1e-9},
	}
	e := New()
	seq := req
	seq.Parallel = 1
	base, err := e.Sensitivity(seq, []string{"N", "M", "c", "ghost"}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{4, 16} {
		r := req
		r.Parallel = workers
		got, err := e.Sensitivity(r, []string{"N", "M", "c", "ghost"}, 0.05)
		if err != nil {
			t.Fatalf("parallel=%d: %v", workers, err)
		}
		if len(got.Points) != len(base.Points) {
			t.Fatalf("parallel=%d: %d points, want %d", workers, len(got.Points), len(base.Points))
		}
		for i := range base.Points {
			if got.Points[i] != base.Points[i] {
				t.Errorf("parallel=%d: point %d = %+v, want %+v",
					workers, i, got.Points[i], base.Points[i])
			}
		}
		if len(got.Skipped) != 1 || got.Skipped[0] != base.Skipped[0] {
			t.Errorf("parallel=%d: skipped = %v, want %v", workers, got.Skipped, base.Skipped)
		}
	}
}

// TestSweepProcessesBitIdenticalAcrossWorkerCounts covers the sweep path
// (and, through it, CompareModels).
func TestSweepProcessesBitIdenticalAcrossWorkerCounts(t *testing.T) {
	req := Request{
		Model:   samples.Jacobi(),
		Globals: map[string]float64{"n": 256, "iters": 4, "flop": 2e-9},
	}
	counts := []int{1, 2, 4, 8}
	e := New()
	seq := req
	seq.Parallel = 1
	base, err := e.SweepProcesses(seq, counts)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{4, 16} {
		r := req
		r.Parallel = workers
		got, err := e.SweepProcesses(r, counts)
		if err != nil {
			t.Fatalf("parallel=%d: %v", workers, err)
		}
		for i := range base {
			if got[i] != base[i] {
				t.Errorf("parallel=%d: point %d = %+v, want %+v", workers, i, got[i], base[i])
			}
		}
	}
}

// TestMonteCarloFailFast: a batch whose first job errors must return
// promptly with that error and leave no simulation goroutines behind.
func TestMonteCarloFailFast(t *testing.T) {
	// MaxSteps 1 makes every run fail immediately with a step-limit
	// error: Jacobi's iteration loop exceeds one element execution.
	req := Request{
		Model:    samples.Jacobi(),
		Globals:  map[string]float64{"n": 256, "iters": 8, "flop": 2e-9},
		MaxSteps: 1,
		Parallel: 4,
	}
	before := runtime.NumGoroutine()
	start := time.Now()
	_, err := New().MonteCarlo(req, 256)
	if err == nil {
		t.Fatal("expected step-limit error")
	}
	if d := time.Since(start); d > 30*time.Second {
		t.Errorf("fail-fast batch took %v", d)
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before+2 {
		t.Errorf("goroutines grew from %d to %d after failed batch", before, after)
	}
}

// TestMonteCarloContextCancellation: a cancelled request context aborts
// the batch with the context's error.
func TestMonteCarloCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := Request{
		Model:    samples.Kernel6(),
		Globals:  map[string]float64{"N": 100, "M": 10, "c": 1e-9},
		Parallel: 4,
		Context:  ctx,
	}
	if _, err := New().MonteCarlo(req, 64); err == nil {
		t.Fatal("cancelled batch returned nil error")
	}
}

// TestCompileCachedReusesProgram: the batch entry points must compile a
// model once per estimator, not once per call.
func TestCompileCachedReusesProgram(t *testing.T) {
	e := New()
	m := samples.Kernel6()
	p1, err := e.CompileCached(m)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := e.CompileCached(m)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("CompileCached recompiled the same model")
	}
	e.InvalidateCache(m)
	p3, err := e.CompileCached(m)
	if err != nil {
		t.Fatal(err)
	}
	if p3 == p1 {
		t.Error("InvalidateCache did not drop the cached program")
	}
}
