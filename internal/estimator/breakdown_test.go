package estimator

import (
	"math"
	"testing"

	"prophet/internal/builder"
	"prophet/internal/machine"
	"prophet/internal/profile"
	"prophet/internal/samples"
)

func TestBreakdownSampleIsAllCompute(t *testing.T) {
	m := samples.Sample()
	est, err := New().Estimate(Request{Model: m})
	if err != nil {
		t.Fatal(err)
	}
	b := BreakdownOf(m, est.Summary)
	if b.Communication != 0 {
		t.Errorf("sample model has no communication, got %v", b.Communication)
	}
	// Actions only: A1 + SA1 + SA2 + A4 = 8.5 + 5 + 0.1 + 5 (SA excluded,
	// it is an activity whose time is inclusive).
	want := 8.5 + 5 + 0.1 + 5
	if math.Abs(b.Compute-want) > 1e-12 {
		t.Errorf("compute = %v, want %v", b.Compute, want)
	}
	if b.CommunicationFraction() != 0 {
		t.Errorf("fraction = %v", b.CommunicationFraction())
	}
	if b.ByStereotype[profile.ActionPlus] != b.Compute {
		t.Errorf("stereotype split wrong: %v", b.ByStereotype)
	}
}

func TestBreakdownSeparatesCommunication(t *testing.T) {
	b := builder.New("m")
	b.Function("F", nil, "6")
	d := b.Diagram("main")
	d.Initial()
	d.Action("Work").Cost("F()")
	d.MPI("Bar", profile.MPIBarrier)
	d.Final()
	d.Chain("initial", "Work", "Bar", "final")
	m, _ := b.Build()

	// Two processes: rank 1 idles 0, rank 0 works 6; both sync. Barrier
	// wait time counts as communication.
	est, err := New().Estimate(Request{
		Model:  m,
		Params: machine.SystemParams{Nodes: 1, ProcessorsPerNode: 4, Processes: 2, Threads: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	bd := BreakdownOf(m, est.Summary)
	if bd.Compute != 12 { // both ranks compute 6
		t.Errorf("compute = %v, want 12", bd.Compute)
	}
	if bd.Communication != 0 {
		// Both ranks reach the barrier at the same time, so blocked time
		// is zero — but the element still appears with zero total.
		t.Errorf("synchronized barrier should cost ~0, got %v", bd.Communication)
	}
	if _, ok := bd.ByStereotype[profile.MPIBarrier]; !ok {
		t.Errorf("barrier missing from stereotype split: %v", bd.ByStereotype)
	}
}

func TestBreakdownBlockedRecvCounts(t *testing.T) {
	b := builder.New("m")
	b.Function("F", nil, "pid * 10")
	d := b.Diagram("main")
	d.Initial()
	d.Action("Work").Cost("F()")
	d.Decision("who")
	d.MPI("Send", profile.MPISend).Tag("dest", "0").Tag("size", "8")
	d.MPI("Recv", profile.MPIRecv).Tag("src", "1")
	d.Merge("done")
	d.Final()
	d.Flow("initial", "Work")
	d.Flow("Work", "who")
	d.FlowIf("who", "Recv", "pid == 0")
	d.FlowIf("who", "Send", "else")
	d.Flow("Recv", "done")
	d.Flow("Send", "done")
	d.Flow("done", "final")
	m, _ := b.Build()

	est, err := New().Estimate(Request{
		Model:  m,
		Params: machine.SystemParams{Nodes: 1, ProcessorsPerNode: 4, Processes: 2, Threads: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	bd := BreakdownOf(m, est.Summary)
	// Rank 0 computes 0 then blocks ~10 units waiting for rank 1's send.
	if bd.Communication < 9 {
		t.Errorf("blocked receive should count as communication: %v", bd.Communication)
	}
	if f := bd.CommunicationFraction(); f <= 0 || f >= 1 {
		t.Errorf("fraction = %v, want in (0,1)", f)
	}
	top := bd.TopElements(1)
	if len(top) != 1 {
		t.Fatalf("top = %v", top)
	}
	if top[0] != "Recv" && top[0] != "Work" {
		t.Errorf("unexpected top element %q", top[0])
	}
	if got := bd.TopElements(100); len(got) != len(bd.ByElement) {
		t.Errorf("TopElements should clamp to available elements")
	}
}
