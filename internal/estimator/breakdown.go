package estimator

import (
	"sort"
	"strings"

	"prophet/internal/trace"
	"prophet/internal/uml"
)

// Breakdown splits the simulated time by element class, answering the
// first question a modeler asks of a run: how much of the predicted time
// is computation and how much is communication/synchronization.
//
// Only action-level elements are counted (activities include their
// children's time and would double-count).
type Breakdown struct {
	// Compute is the total time in action+/omp elements.
	Compute float64
	// Communication is the total time in mpi_* elements (including time
	// blocked in receives and barriers).
	Communication float64
	// ByStereotype is the total time per stereotype.
	ByStereotype map[string]float64
	// ByElement is the total time per action-level element name.
	ByElement map[string]float64
}

// CommunicationFraction returns communication / (compute+communication),
// or 0 for an empty run.
func (b Breakdown) CommunicationFraction() float64 {
	total := b.Compute + b.Communication
	if total == 0 {
		return 0
	}
	return b.Communication / total
}

// BreakdownOf classifies a run's summary using the model that produced
// it.
func BreakdownOf(m *uml.Model, sum *trace.Summary) Breakdown {
	b := Breakdown{
		ByStereotype: map[string]float64{},
		ByElement:    map[string]float64{},
	}
	stereotypes := map[string]string{}
	for _, d := range m.Diagrams() {
		for _, n := range d.Nodes() {
			if n.Kind() == uml.KindAction && n.Stereotype() != "" {
				stereotypes[n.Name()] = n.Stereotype()
			}
		}
	}
	for name, st := range sum.Elements {
		stereo, ok := stereotypes[name]
		if !ok {
			continue // activity or loop: inclusive time, skip
		}
		b.ByStereotype[stereo] += st.Total
		b.ByElement[name] += st.Total
		if strings.HasPrefix(stereo, "mpi_") {
			b.Communication += st.Total
		} else {
			b.Compute += st.Total
		}
	}
	return b
}

// TopElements returns the n most expensive action-level elements, by
// total time, ties broken by name.
func (b Breakdown) TopElements(n int) []string {
	names := make([]string, 0, len(b.ByElement))
	for name := range b.ByElement {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool {
		ti, tj := b.ByElement[names[i]], b.ByElement[names[j]]
		if ti != tj {
			return ti > tj
		}
		return names[i] < names[j]
	})
	if n < len(names) {
		names = names[:n]
	}
	return names
}
