// Package estimator implements the Performance Estimator of the paper's
// Figure 2: the component that "estimates the performance of a parallel
// and distributed program on a target computer architecture".
//
// Its Simulation Manager accepts the program's performance model (PMP) and
// the system parameters (SP), generates the machine model, integrates the
// two into the model of the whole computing system, evaluates it on the
// simulation engine, and emits the trace file (TF) together with summary
// statistics. Sweep helpers rerun the evaluation across parameter ranges,
// which is how the scalability experiments of EXPERIMENTS.md are produced.
package estimator

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"prophet/internal/checker"
	"prophet/internal/interp"
	"prophet/internal/lower"
	"prophet/internal/machine"
	"prophet/internal/obs"
	"prophet/internal/profile"
	"prophet/internal/runner"
	"prophet/internal/sim"
	"prophet/internal/trace"
	"prophet/internal/uml"
	"prophet/internal/xmi"
)

// Request describes one evaluation.
type Request struct {
	// Model is the program's performance model.
	Model *uml.Model
	// Params are the system parameters (SP). The zero value means one
	// process on one single-processor node.
	Params machine.SystemParams
	// Net overrides the interconnect parameters (nil = defaults).
	Net *machine.NetParams
	// Globals provides values for global model variables.
	Globals map[string]float64
	// TracePath, when non-empty, writes the trace file there.
	TracePath string
	// Policy selects the processor-contention discipline (FCFS default,
	// or processor sharing).
	Policy machine.Policy
	// Seed drives probabilistic branch selection (0 = default seed).
	Seed int64
	// SkipCheck bypasses the model checker (for models already checked).
	SkipCheck bool
	// MaxSteps bounds element executions per process (0 = default).
	MaxSteps int
	// Backend selects the execution engine: the flat lowered program
	// (default) or the tree-walking interpreter. Both produce
	// bit-identical results; interp remains the differential oracle.
	Backend Backend
	// Mode selects between the simulation engine (default) and the
	// closed-form analytic solver; ModeAuto tries analytic first and
	// falls back to simulation when the model is outside the analytic
	// class. An analytic estimate has Analytic set and carries no trace,
	// summary, or telemetry.
	Mode Mode

	// Telemetry enables simulated-time sampling during the run: the
	// resulting Estimate carries facility utilization, queue length,
	// mailbox depth, event-queue size and live-process series.
	Telemetry bool
	// SampleInterval is the simulated-time spacing between telemetry
	// samples (0 = sample whenever simulated time advances).
	SampleInterval float64
	// MaxSamples bounds the retained telemetry series (0 = 2048); longer
	// runs are decimated evenly.
	MaxSamples int
	// Parallel bounds the worker pool used by batch evaluations
	// (MonteCarlo, Sensitivity, sweeps, CompareModels): 0 means
	// GOMAXPROCS, 1 forces a sequential batch, N allows at most N
	// concurrent simulation runs. Batch results are bit-identical at
	// every setting — results are keyed by job index and aggregated in
	// index order, never in completion order.
	Parallel int
	// Context, when non-nil, cancels the evaluation early: a single
	// Estimate is interrupted cooperatively between simulation events,
	// and batch entry points additionally stop fanning out further runs.
	// The call returns promptly with an error wrapping the context's
	// cancellation cause. nil means Background (run to completion).
	Context context.Context
	// Spans, when non-nil, additionally receives every per-stage span
	// the estimator records (Estimate.Stages always has them too). Use
	// one recorder across repeated calls to aggregate a sweep.
	Spans *obs.SpanRecorder
	// Metrics, when non-nil, is updated with counters/gauges/histograms
	// describing the run (see docs/OBSERVABILITY.md for the schema).
	Metrics *obs.Registry
}

// Estimate is the outcome of one evaluation.
type Estimate struct {
	// Makespan is the predicted program execution time: the simulated
	// makespan, or the solved expectation when Analytic is set.
	Makespan float64
	// Variance is the closed-form variance of the makespan under the
	// model's distributions and branch weights. Only the analytic solver
	// fills it (a single simulation run observes one sample, not a
	// variance); it is 0 for deterministic models.
	Variance float64
	// Analytic reports that this estimate came from the closed-form
	// solver rather than a simulation run.
	Analytic bool
	// Trace is the full trace (TF).
	Trace *trace.Trace
	// Summary aggregates the trace per element and per process.
	Summary *trace.Summary
	// CPUUtilization per node.
	CPUUtilization []float64
	// Globals holds final global-variable values.
	Globals map[string]float64
	// Stages is the per-stage wall-clock breakdown of this evaluation
	// ("check", "compile", "simulate", "summarize", "trace-write").
	Stages []obs.Span
	// Telemetry carries the simulated-time series sampled during the run
	// (nil unless Request.Telemetry was set).
	Telemetry *Telemetry
}

// Telemetry is the simulated-time series collected by the sim engine's
// observer during one evaluation.
type Telemetry struct {
	// Samples is the retained (possibly decimated) sample series in time
	// order; the last sample reflects the end of the run.
	Samples []sim.Sample `json:"samples"`
	// EventCounts tallies process lifecycle events by kind ("spawn",
	// "run", "hold", "block", "done").
	EventCounts map[string]int64 `json:"event_counts,omitempty"`
}

// ctx resolves the request's batch context.
func (r Request) ctx() context.Context {
	if r.Context != nil {
		return r.Context
	}
	return context.Background()
}

// pool builds the runner options shared by every batch entry point: the
// request's worker bound plus its observability sinks.
func (r Request) pool(label string) runner.Options {
	return runner.Options{
		Workers: r.Parallel,
		Label:   label,
		Spans:   r.Spans,
		Metrics: r.Metrics,
	}
}

// maxCachedPrograms bounds the compiled-program cache: entries beyond it
// are evicted oldest-first. Content-hash keys mean a model mutated in
// place leaves its old entry unreachable, so the bound also caps how much
// garbage a mutate-recompile loop can accumulate.
const maxCachedPrograms = 256

// Estimator evaluates performance models.
type Estimator struct {
	registry *profile.Registry
	checker  *checker.Checker

	// progMu guards progs/progOrder, the per-estimator compiled-program
	// cache, keyed by the model's canonical-XMI content hash (xmi.Hash):
	// batch entry points and the serving layer compile each distinct
	// model content exactly once, and a model mutated in place hashes to
	// a new key, so it is recompiled instead of served stale.
	progMu    sync.Mutex
	progs     map[string]*interp.Program
	progOrder []string // insertion order, for oldest-first eviction

	// lowMu guards the lowered-program cache (see loweredFor), keyed by
	// the model's content hash with a per-pointer memo: each distinct
	// model content is lowered at most once, however many compiled
	// program instances share it.
	lowMu    sync.Mutex
	lowKeys  map[*interp.Program]string
	lowered  map[string]*lower.Program
	lowOrder []string

	// cacheHits/cacheMisses count CompileCached outcomes; metrics, when
	// set, mirrors them into estimator_cache_{hits,misses}_total.
	cacheHits   int64
	cacheMisses int64
	metrics     *obs.Registry
}

// New returns an estimator using the standard profile and default checker
// configuration.
func New() *Estimator {
	reg := profile.NewRegistry()
	return &Estimator{registry: reg, checker: checker.NewWith(reg, checker.Config{})}
}

// NewWith returns an estimator with explicit profile registry and checker
// configuration.
func NewWith(reg *profile.Registry, cfg checker.Config) *Estimator {
	return &Estimator{registry: reg, checker: checker.NewWith(reg, cfg)}
}

// stage opens one pipeline span in the estimate's own recorder, the
// caller-provided recorder (when set), and — when a trace span rides the
// request context — the request's trace tree. The returned context
// carries the trace child (it is req.Context unchanged when no trace is
// attached, nil when the request has none); the returned span is the
// trace child (nil without one, safe to Annotate either way); the
// returned func closes every span opened.
func stage(req Request, rec *obs.SpanRecorder, name string) (context.Context, *obs.TraceSpan, func()) {
	d1 := rec.Start(name)
	d2 := req.Spans.Start(name) // nil-safe
	ctx := req.Context
	var ts *obs.TraceSpan
	if ctx != nil {
		ctx, ts = obs.StartSpan(ctx, name)
	}
	return ctx, ts, func() { d1(); d2(); ts.End() }
}

// Estimate runs one evaluation: check, compile, simulate, summarize.
func (e *Estimator) Estimate(req Request) (*Estimate, error) {
	if req.Model == nil {
		return nil, fmt.Errorf("estimator: nil model")
	}
	// An already-done context returns before any work; mid-run expiry is
	// handled cooperatively inside the simulation (interp.Config.Context).
	if ctx := req.ctx(); ctx.Err() != nil {
		return nil, fmt.Errorf("estimator: %w", context.Cause(ctx))
	}
	rec := obs.NewSpanRecorder()
	if !req.SkipCheck {
		_, _, done := stage(req, rec, "check")
		rep := e.checker.Check(req.Model)
		done()
		if rep.HasErrors() {
			return nil, &CheckError{Model: req.Model.Name(), Report: rep}
		}
	}
	_, ts, done := stage(req, rec, "compile")
	pr, err := interp.Compile(req.Model, e.registry)
	ts.Annotate("backend", req.Backend.String())
	done()
	if err != nil {
		return nil, fmt.Errorf("estimator: %w", err)
	}
	return e.runMode(pr, req, false, rec)
}

// Compile prepares a model once for repeated evaluation (parameter
// sweeps).
func (e *Estimator) Compile(m *uml.Model) (*interp.Program, error) {
	return e.compileCtx(context.Background(), m, "")
}

// compileCtx checks then compiles the model, recording "check" and
// "compile" spans into the trace riding ctx (no-ops without one).
// cacheAttr, when non-empty, annotates the compile span's cache outcome.
func (e *Estimator) compileCtx(ctx context.Context, m *uml.Model, cacheAttr string) (*interp.Program, error) {
	_, sp := obs.StartSpan(ctx, "check")
	rep := e.checker.Check(m)
	sp.End()
	if rep.HasErrors() {
		return nil, &CheckError{Model: m.Name(), Report: rep}
	}
	_, sp = obs.StartSpan(ctx, "compile")
	pr, err := interp.Compile(m, e.registry)
	if cacheAttr != "" {
		sp.Annotate("cache", cacheAttr)
	}
	sp.End()
	if err != nil {
		return nil, fmt.Errorf("estimator: %w", err)
	}
	return pr, nil
}

// SetMetrics installs a registry that receives the estimator's cache
// counters (estimator_cache_hits_total, estimator_cache_misses_total).
// Call it once, before the estimator is used concurrently.
func (e *Estimator) SetMetrics(reg *obs.Registry) {
	e.progMu.Lock()
	e.metrics = reg
	e.progMu.Unlock()
}

// CacheStats returns how many CompileCached calls were served from the
// compiled-program cache and how many had to compile.
func (e *Estimator) CacheStats() (hits, misses int64) {
	e.progMu.Lock()
	defer e.progMu.Unlock()
	return e.cacheHits, e.cacheMisses
}

// cacheEvent counts one cache outcome; call with progMu held.
func (e *Estimator) cacheEvent(hit bool) {
	name := "estimator_cache_misses_total"
	if hit {
		e.cacheHits++
		name = "estimator_cache_hits_total"
	} else {
		e.cacheMisses++
	}
	if e.metrics != nil {
		e.metrics.Counter(name).Inc()
	}
}

// CompileCached returns the cached compiled program for m, checking and
// compiling it on first use. The cache is keyed by the model's
// canonical-XMI content hash (xmi.Hash) — the same key the serving
// layer's model store uses — so every batch entry point (MonteCarlo,
// Sensitivity, sweeps, CompareModels) and every server request compiles
// each distinct model content exactly once. Because the key is content,
// not identity, a model mutated in place hashes to a new key and is
// recompiled — the cache can never serve a stale program. The cache
// holds at most maxCachedPrograms entries, evicting oldest-first.
func (e *Estimator) CompileCached(m *uml.Model) (*interp.Program, error) {
	return e.CompileCachedCtx(context.Background(), m)
}

// CompileCachedCtx is CompileCached with request tracing: when ctx
// carries a trace span, a cache hit records a "compile" span annotated
// cache=hit, and a miss records the real "check" and "compile" spans
// (the latter annotated cache=miss) — so a request's span tree shows
// whether it paid for compilation.
func (e *Estimator) CompileCachedCtx(ctx context.Context, m *uml.Model) (*interp.Program, error) {
	if m == nil {
		return nil, fmt.Errorf("estimator: nil model")
	}
	key, err := xmi.Hash(m)
	if err != nil {
		// A model that cannot be canonicalized cannot be content-addressed;
		// compile it uncached rather than risking a stale identity hit.
		return e.compileCtx(ctx, m, "uncacheable")
	}
	e.progMu.Lock()
	pr, ok := e.progs[key]
	e.cacheEvent(ok)
	e.progMu.Unlock()
	if ok {
		_, sp := obs.StartSpan(ctx, "compile")
		sp.Annotate("cache", "hit")
		sp.End()
		return pr, nil
	}
	pr, err = e.compileCtx(ctx, m, "miss")
	if err != nil {
		return nil, err
	}
	e.progMu.Lock()
	if e.progs == nil {
		e.progs = map[string]*interp.Program{}
	}
	// A concurrent caller may have compiled the same content; keep the
	// first program so every run of a batch uses one instance.
	if prev, ok := e.progs[key]; ok {
		pr = prev
	} else {
		e.progs[key] = pr
		e.progOrder = append(e.progOrder, key)
		for len(e.progOrder) > maxCachedPrograms {
			delete(e.progs, e.progOrder[0])
			e.progOrder = e.progOrder[1:]
		}
	}
	e.progMu.Unlock()
	return pr, nil
}

// InvalidateCache drops the compiled program cached for m's current
// content (all cached programs when m is nil). With content-hash keys a
// mutated model never hits its old entry, so invalidation is no longer
// needed for correctness — it only releases memory, e.g. for a model
// that will not be evaluated again.
func (e *Estimator) InvalidateCache(m *uml.Model) {
	e.progMu.Lock()
	defer e.progMu.Unlock()
	if m == nil {
		e.progs = nil
		e.progOrder = nil
		return
	}
	key, err := xmi.Hash(m)
	if err != nil {
		return
	}
	if _, ok := e.progs[key]; !ok {
		return
	}
	delete(e.progs, key)
	for i, k := range e.progOrder {
		if k == key {
			e.progOrder = append(e.progOrder[:i], e.progOrder[i+1:]...)
			break
		}
	}
}

// EstimateCompiled evaluates a pre-compiled program.
func (e *Estimator) EstimateCompiled(pr *interp.Program, req Request) (*Estimate, error) {
	return e.run(pr, req)
}

// EstimateCompiledFast evaluates a pre-compiled program in fast mode:
// trace collection and summarization are skipped (Estimate.Trace and
// Estimate.Summary are nil), the mode the batch loops use internally.
// This is the hot path of the serving layer, which returns the makespan
// and utilization but never ships a trace.
func (e *Estimator) EstimateCompiledFast(pr *interp.Program, req Request) (*Estimate, error) {
	return e.runMode(pr, req, true, obs.NewSpanRecorder())
}

func (e *Estimator) run(pr *interp.Program, req Request) (*Estimate, error) {
	return e.runMode(pr, req, false, obs.NewSpanRecorder())
}

// runMode evaluates the program; fast mode skips trace collection and
// summarization (Estimate.Trace/Summary are nil), which is what the
// sweep and Monte Carlo loops want. rec accumulates the per-stage spans
// reported as Estimate.Stages.
func (e *Estimator) runMode(pr *interp.Program, req Request, fast bool, rec *obs.SpanRecorder) (*Estimate, error) {
	if req.Mode != ModeSimulate {
		if est, err, handled := e.runAnalytic(pr, req, rec); handled {
			return est, err
		}
	}
	cfg := interp.Config{
		Params:   req.Params,
		Net:      req.Net,
		Globals:  req.Globals,
		Policy:   req.Policy,
		Seed:     req.Seed,
		MaxSteps: req.MaxSteps,
		NoTrace:  fast,
		Context:  req.Context,
	}
	var simRec *sim.Recorder
	if req.Telemetry || req.Metrics != nil {
		simRec = sim.NewRecorder(req.MaxSamples)
		cfg.Observer = simRec
		cfg.SampleInterval = req.SampleInterval
	}
	// Resolve the backend before the simulate stage so lowering (a cheap
	// one-time transform, cached per program) is visible as its own stage.
	run := pr.Run
	if req.Backend.effective() == BackendLowered {
		_, ts, done := stage(req, rec, "lower")
		lp, cached := e.loweredFor(pr)
		if cached {
			ts.Annotate("cache", "hit")
		} else {
			ts.Annotate("cache", "miss")
		}
		done()
		run = lp.Run
	}
	// The simulate stage's derived context carries the stage's trace span
	// into the backend, which nests the engine-level "sim" span (with
	// event counts) underneath it.
	simCtx, _, done := stage(req, rec, "simulate")
	cfg.Context = simCtx
	res, err := run(cfg)
	done()
	if err != nil {
		return nil, fmt.Errorf("estimator: %w", err)
	}
	est := &Estimate{
		Makespan:       res.Makespan,
		CPUUtilization: res.CPUUtilization,
		Globals:        res.Globals,
	}
	if req.Telemetry && simRec != nil {
		est.Telemetry = &Telemetry{
			Samples:     simRec.Samples(),
			EventCounts: simRec.EventCounts(),
		}
	}
	if fast {
		e.finish(req, est, rec, simRec)
		return est, nil
	}
	_, _, done = stage(req, rec, "summarize")
	sum, err := trace.Summarize(res.Trace)
	done()
	if err != nil {
		return nil, fmt.Errorf("estimator: summarize: %w", err)
	}
	if req.TracePath != "" {
		_, _, done = stage(req, rec, "trace-write")
		err := trace.Save(req.TracePath, res.Trace)
		done()
		if err != nil {
			return nil, fmt.Errorf("estimator: %w", err)
		}
	}
	est.Trace = res.Trace
	est.Summary = sum
	e.finish(req, est, rec, simRec)
	return est, nil
}

// finish attaches the recorded stages to the estimate and, when the
// request carries a metrics registry, publishes the run's metrics into it.
func (e *Estimator) finish(req Request, est *Estimate, rec *obs.SpanRecorder, simRec *sim.Recorder) {
	est.Stages = rec.Spans()
	reg := req.Metrics
	if reg == nil {
		return
	}
	reg.Counter("estimator_runs_total").Inc()
	reg.Gauge("estimate_makespan_seconds").Set(est.Makespan)
	stageHist := reg.HistogramVec("estimate_stage_seconds",
		[]float64{1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1, 10}, "stage")
	stageGauge := reg.GaugeVec("estimate_stage_last_seconds", "stage")
	for _, s := range est.Stages {
		stageHist.With(s.Name).Observe(s.Seconds)
		stageGauge.With(s.Name).Set(s.Seconds)
	}
	// Labeled children are snapshotted in creation order, so publish map
	// entries in sorted key order to keep snapshots stable across runs.
	for node, u := range est.CPUUtilization {
		reg.GaugeVec("cpu_utilization", "node").With(fmt.Sprint(node)).Set(u)
	}
	if simRec != nil {
		events := reg.CounterVec("sim_events_total", "kind")
		counts := simRec.EventCounts()
		for _, kind := range sortedKeys(counts) {
			events.With(kind).Add(counts[kind])
		}
		samples := simRec.Samples()
		reg.Counter("sim_samples_total").Add(int64(len(samples)))
		if len(samples) > 0 {
			last := samples[len(samples)-1]
			util := reg.GaugeVec("facility_utilization", "facility")
			for _, name := range sortedKeys(last.FacilityUtilization) {
				util.With(name).Set(last.FacilityUtilization[name])
			}
		}
	}
}

// sortedKeys returns m's keys in ascending order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// CheckError reports a model that failed the Model Checker.
type CheckError struct {
	Model  string
	Report *checker.Report
}

func (c *CheckError) Error() string {
	return fmt.Sprintf("estimator: model %q failed checking with %d error(s); first: %s",
		c.Model, c.Report.Count(checker.Error), firstError(c.Report))
}

func firstError(rep *checker.Report) string {
	for _, d := range rep.Diagnostics {
		if d.Severity == checker.Error {
			return d.String()
		}
	}
	return "(none)"
}

// SweepPoint is one sample of a scalability sweep.
type SweepPoint struct {
	// Processes used for this point.
	Processes int
	// Nodes used for this point.
	Nodes int
	// Makespan predicted.
	Makespan float64
	// Speedup relative to the first point of the sweep.
	Speedup float64
	// Efficiency = Speedup / (Processes/Processes0).
	Efficiency float64
}

// SweepProcesses evaluates the model across process counts, keeping the
// other parameters of req fixed, and derives speedup/efficiency relative
// to the first count. When req.Params.Nodes is 0 the node count scales
// with the processes (one node per ProcessorsPerNode processes).
func (e *Estimator) SweepProcesses(req Request, counts []int) ([]SweepPoint, error) {
	done := req.Spans.Start("compile")
	pr, err := e.CompileCachedCtx(req.ctx(), req.Model)
	done()
	if err != nil {
		return nil, err
	}
	out, err := runner.Map(req.ctx(), len(counts), req.pool("sweep-point"),
		func(ctx context.Context, i int) (SweepPoint, error) {
			procs := counts[i]
			p := req.Params
			if p.ProcessorsPerNode == 0 {
				p.ProcessorsPerNode = 1
			}
			if p.Threads == 0 {
				p.Threads = 1
			}
			p.Processes = procs
			if req.Params.Nodes == 0 {
				p.Nodes = (procs + p.ProcessorsPerNode - 1) / p.ProcessorsPerNode
			}
			r := req
			r.Params = p
			// ctx is the runner's per-job context: cancelled when the batch
			// fails fast, and carrying the job's trace span when the request
			// is traced — so the simulate span nests under its sweep point.
			r.Context = ctx
			est, err := e.runMode(pr, r, true, obs.NewSpanRecorder())
			if err != nil {
				return SweepPoint{}, fmt.Errorf("estimator: sweep at %d processes: %w", procs, err)
			}
			return SweepPoint{Processes: procs, Nodes: p.Nodes, Makespan: est.Makespan}, nil
		})
	if err != nil {
		return nil, err
	}
	// Speedup and efficiency are relative to the first point; derive them
	// after the fan-out so the derivation order is independent of worker
	// scheduling.
	DeriveSweepStats(out)
	return out, nil
}

// DeriveSweepStats fills the Speedup and Efficiency of every point
// relative to the first point of the slice, overwriting whatever was
// there. It is the derivation SweepProcesses applies after its fan-out,
// exported so a sharded coordinator that merges sub-range points — whose
// shard-local derivations were relative to the wrong first point — can
// re-derive over the merged slice with the exact same float operations
// and stay bit-identical to a single-node sweep.
func DeriveSweepStats(points []SweepPoint) {
	for i := range points {
		points[i].Speedup = 0
		points[i].Efficiency = 0
		if i == 0 {
			points[i].Speedup = 1
			points[i].Efficiency = 1
		} else if points[i].Makespan > 0 {
			points[i].Speedup = points[0].Makespan / points[i].Makespan
			points[i].Efficiency = points[i].Speedup / (float64(points[i].Processes) / float64(points[0].Processes))
		}
	}
}

// GlobalPoint is one sample of a global-variable sweep.
type GlobalPoint struct {
	Value    float64
	Makespan float64
}

// SweepGlobal evaluates the model across values of one global variable.
func (e *Estimator) SweepGlobal(req Request, name string, values []float64) ([]GlobalPoint, error) {
	done := req.Spans.Start("compile")
	pr, err := e.CompileCachedCtx(req.ctx(), req.Model)
	done()
	if err != nil {
		return nil, err
	}
	return runner.Map(req.ctx(), len(values), req.pool("sweep-point"),
		func(ctx context.Context, i int) (GlobalPoint, error) {
			v := values[i]
			r := req
			r.Globals = make(map[string]float64, len(req.Globals)+1)
			for k, gv := range req.Globals {
				r.Globals[k] = gv
			}
			r.Globals[name] = v
			r.Context = ctx
			est, err := e.runMode(pr, r, true, obs.NewSpanRecorder())
			if err != nil {
				return GlobalPoint{}, fmt.Errorf("estimator: sweep %s=%g: %w", name, v, err)
			}
			return GlobalPoint{Value: v, Makespan: est.Makespan}, nil
		})
}
