// Package estimator implements the Performance Estimator of the paper's
// Figure 2: the component that "estimates the performance of a parallel
// and distributed program on a target computer architecture".
//
// Its Simulation Manager accepts the program's performance model (PMP) and
// the system parameters (SP), generates the machine model, integrates the
// two into the model of the whole computing system, evaluates it on the
// simulation engine, and emits the trace file (TF) together with summary
// statistics. Sweep helpers rerun the evaluation across parameter ranges,
// which is how the scalability experiments of EXPERIMENTS.md are produced.
package estimator

import (
	"fmt"

	"prophet/internal/checker"
	"prophet/internal/interp"
	"prophet/internal/machine"
	"prophet/internal/profile"
	"prophet/internal/trace"
	"prophet/internal/uml"
)

// Request describes one evaluation.
type Request struct {
	// Model is the program's performance model.
	Model *uml.Model
	// Params are the system parameters (SP). The zero value means one
	// process on one single-processor node.
	Params machine.SystemParams
	// Net overrides the interconnect parameters (nil = defaults).
	Net *machine.NetParams
	// Globals provides values for global model variables.
	Globals map[string]float64
	// TracePath, when non-empty, writes the trace file there.
	TracePath string
	// Policy selects the processor-contention discipline (FCFS default,
	// or processor sharing).
	Policy machine.Policy
	// Seed drives probabilistic branch selection (0 = default seed).
	Seed int64
	// SkipCheck bypasses the model checker (for models already checked).
	SkipCheck bool
	// MaxSteps bounds element executions per process (0 = default).
	MaxSteps int
}

// Estimate is the outcome of one evaluation.
type Estimate struct {
	// Makespan is the predicted program execution time.
	Makespan float64
	// Trace is the full trace (TF).
	Trace *trace.Trace
	// Summary aggregates the trace per element and per process.
	Summary *trace.Summary
	// CPUUtilization per node.
	CPUUtilization []float64
	// Globals holds final global-variable values.
	Globals map[string]float64
}

// Estimator evaluates performance models.
type Estimator struct {
	registry *profile.Registry
	checker  *checker.Checker
}

// New returns an estimator using the standard profile and default checker
// configuration.
func New() *Estimator {
	reg := profile.NewRegistry()
	return &Estimator{registry: reg, checker: checker.NewWith(reg, checker.Config{})}
}

// NewWith returns an estimator with explicit profile registry and checker
// configuration.
func NewWith(reg *profile.Registry, cfg checker.Config) *Estimator {
	return &Estimator{registry: reg, checker: checker.NewWith(reg, cfg)}
}

// Estimate runs one evaluation: check, compile, simulate, summarize.
func (e *Estimator) Estimate(req Request) (*Estimate, error) {
	if req.Model == nil {
		return nil, fmt.Errorf("estimator: nil model")
	}
	if !req.SkipCheck {
		rep := e.checker.Check(req.Model)
		if rep.HasErrors() {
			return nil, &CheckError{Model: req.Model.Name(), Report: rep}
		}
	}
	pr, err := interp.Compile(req.Model, e.registry)
	if err != nil {
		return nil, fmt.Errorf("estimator: %w", err)
	}
	return e.run(pr, req)
}

// Compile prepares a model once for repeated evaluation (parameter
// sweeps).
func (e *Estimator) Compile(m *uml.Model) (*interp.Program, error) {
	rep := e.checker.Check(m)
	if rep.HasErrors() {
		return nil, &CheckError{Model: m.Name(), Report: rep}
	}
	pr, err := interp.Compile(m, e.registry)
	if err != nil {
		return nil, fmt.Errorf("estimator: %w", err)
	}
	return pr, nil
}

// EstimateCompiled evaluates a pre-compiled program.
func (e *Estimator) EstimateCompiled(pr *interp.Program, req Request) (*Estimate, error) {
	return e.run(pr, req)
}

func (e *Estimator) run(pr *interp.Program, req Request) (*Estimate, error) {
	return e.runMode(pr, req, false)
}

// runMode evaluates the program; fast mode skips trace collection and
// summarization (Estimate.Trace/Summary are nil), which is what the
// sweep and Monte Carlo loops want.
func (e *Estimator) runMode(pr *interp.Program, req Request, fast bool) (*Estimate, error) {
	res, err := pr.Run(interp.Config{
		Params:   req.Params,
		Net:      req.Net,
		Globals:  req.Globals,
		Policy:   req.Policy,
		Seed:     req.Seed,
		MaxSteps: req.MaxSteps,
		NoTrace:  fast,
	})
	if err != nil {
		return nil, fmt.Errorf("estimator: %w", err)
	}
	est := &Estimate{
		Makespan:       res.Makespan,
		CPUUtilization: res.CPUUtilization,
		Globals:        res.Globals,
	}
	if fast {
		return est, nil
	}
	sum, err := trace.Summarize(res.Trace)
	if err != nil {
		return nil, fmt.Errorf("estimator: summarize: %w", err)
	}
	if req.TracePath != "" {
		if err := trace.Save(req.TracePath, res.Trace); err != nil {
			return nil, fmt.Errorf("estimator: %w", err)
		}
	}
	est.Trace = res.Trace
	est.Summary = sum
	return est, nil
}

// CheckError reports a model that failed the Model Checker.
type CheckError struct {
	Model  string
	Report *checker.Report
}

func (c *CheckError) Error() string {
	return fmt.Sprintf("estimator: model %q failed checking with %d error(s); first: %s",
		c.Model, c.Report.Count(checker.Error), firstError(c.Report))
}

func firstError(rep *checker.Report) string {
	for _, d := range rep.Diagnostics {
		if d.Severity == checker.Error {
			return d.String()
		}
	}
	return "(none)"
}

// SweepPoint is one sample of a scalability sweep.
type SweepPoint struct {
	// Processes used for this point.
	Processes int
	// Nodes used for this point.
	Nodes int
	// Makespan predicted.
	Makespan float64
	// Speedup relative to the first point of the sweep.
	Speedup float64
	// Efficiency = Speedup / (Processes/Processes0).
	Efficiency float64
}

// SweepProcesses evaluates the model across process counts, keeping the
// other parameters of req fixed, and derives speedup/efficiency relative
// to the first count. When req.Params.Nodes is 0 the node count scales
// with the processes (one node per ProcessorsPerNode processes).
func (e *Estimator) SweepProcesses(req Request, counts []int) ([]SweepPoint, error) {
	pr, err := e.Compile(req.Model)
	if err != nil {
		return nil, err
	}
	var out []SweepPoint
	var base float64
	var baseProcs int
	for i, procs := range counts {
		p := req.Params
		if p.ProcessorsPerNode == 0 {
			p.ProcessorsPerNode = 1
		}
		if p.Threads == 0 {
			p.Threads = 1
		}
		p.Processes = procs
		if req.Params.Nodes == 0 {
			p.Nodes = (procs + p.ProcessorsPerNode - 1) / p.ProcessorsPerNode
		}
		r := req
		r.Params = p
		est, err := e.runMode(pr, r, true)
		if err != nil {
			return nil, fmt.Errorf("estimator: sweep at %d processes: %w", procs, err)
		}
		pt := SweepPoint{Processes: procs, Nodes: p.Nodes, Makespan: est.Makespan}
		if i == 0 {
			base = est.Makespan
			baseProcs = procs
			pt.Speedup = 1
			pt.Efficiency = 1
		} else if est.Makespan > 0 {
			pt.Speedup = base / est.Makespan
			pt.Efficiency = pt.Speedup / (float64(procs) / float64(baseProcs))
		}
		out = append(out, pt)
	}
	return out, nil
}

// GlobalPoint is one sample of a global-variable sweep.
type GlobalPoint struct {
	Value    float64
	Makespan float64
}

// SweepGlobal evaluates the model across values of one global variable.
func (e *Estimator) SweepGlobal(req Request, name string, values []float64) ([]GlobalPoint, error) {
	pr, err := e.Compile(req.Model)
	if err != nil {
		return nil, err
	}
	var out []GlobalPoint
	for _, v := range values {
		r := req
		r.Globals = make(map[string]float64, len(req.Globals)+1)
		for k, gv := range req.Globals {
			r.Globals[k] = gv
		}
		r.Globals[name] = v
		est, err := e.runMode(pr, r, true)
		if err != nil {
			return nil, fmt.Errorf("estimator: sweep %s=%g: %w", name, v, err)
		}
		out = append(out, GlobalPoint{Value: v, Makespan: est.Makespan})
	}
	return out, nil
}
