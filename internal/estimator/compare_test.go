package estimator

import (
	"strconv"
	"testing"

	"prophet/internal/builder"
	"prophet/internal/machine"
	"prophet/internal/uml"
)

// buildAlternative builds a serial-fraction model: total work W of which
// serialFrac does not parallelize (Amdahl).
func buildAlternative(t *testing.T, name string, serialFrac, overheadPerProc float64) *uml.Model {
	t.Helper()
	b := builder.New(name)
	b.Global("W", "double")
	b.Function("FSerial", nil, "W * "+fmtF(serialFrac))
	b.Function("FPar", nil, "W * "+fmtF(1-serialFrac)+" / processes")
	b.Function("FOver", nil, fmtF(overheadPerProc)+" * processes")
	d := b.Diagram("main")
	d.Initial()
	d.Action("Serial").Cost("FSerial()")
	d.Action("Par").Cost("FPar()")
	d.Action("Overhead").Cost("FOver()")
	d.Final()
	d.Chain("initial", "Serial", "Par", "Overhead", "final")
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// fmtF renders a float as expression-language source.
func fmtF(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

func TestCompareModelsCrossover(t *testing.T) {
	// A: low overhead but large serial fraction — wins at small P.
	// B: pays per-process overhead but parallelizes fully — wins at large P.
	a := buildAlternative(t, "mostly-serial", 0.3, 0.0)
	bm := buildAlternative(t, "fully-parallel", 0.0, 0.15)
	req := Request{
		Params:  machine.SystemParams{ProcessorsPerNode: 64, Threads: 1},
		Globals: map[string]float64{"W": 100},
	}
	cmp, err := New().CompareModels(a, bm, req, []int{1, 2, 4, 8, 16, 32})
	if err != nil {
		t.Fatal(err)
	}
	if cmp.NameA != "mostly-serial" || cmp.NameB != "fully-parallel" {
		t.Errorf("names = %q/%q", cmp.NameA, cmp.NameB)
	}
	if len(cmp.Points) != 6 {
		t.Fatalf("points = %d", len(cmp.Points))
	}
	// At P=1: A = 100, B = 100.15 -> A wins. At P=32: A = 30+2.19 = 32.2,
	// B = 3.125+4.8 = 7.9 -> B wins.
	if cmp.Points[0].Winner != "A" {
		t.Errorf("P=1 winner = %s, want A (%v vs %v)",
			cmp.Points[0].Winner, cmp.Points[0].MakespanA, cmp.Points[0].MakespanB)
	}
	last := cmp.Points[len(cmp.Points)-1]
	if last.Winner != "B" {
		t.Errorf("P=32 winner = %s, want B (%v vs %v)", last.Winner, last.MakespanA, last.MakespanB)
	}
	if len(cmp.Crossovers) == 0 {
		t.Errorf("expected a crossover, got none: %+v", cmp.Points)
	}
}

func TestCompareModelsValidation(t *testing.T) {
	m := buildAlternative(t, "x", 0.5, 0)
	if _, err := New().CompareModels(nil, m, Request{}, []int{1}); err == nil {
		t.Error("nil model should fail")
	}
	if _, err := New().CompareModels(m, nil, Request{}, []int{1}); err == nil {
		t.Error("nil model should fail")
	}
}
