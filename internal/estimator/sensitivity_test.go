package estimator

import (
	"math"
	"testing"

	"prophet/internal/builder"
	"prophet/internal/samples"
)

func TestSensitivityKernel6(t *testing.T) {
	// FK6 = M * (N-1)*N/2 * c: elasticity wrt c is exactly 1, wrt M is 1,
	// wrt N is ~2 for large N.
	req := Request{
		Model:   samples.Kernel6(),
		Globals: map[string]float64{"N": 1000, "M": 10, "c": 1e-9},
	}
	res, err := New().Sensitivity(req, []string{"N", "M", "c"}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	pts := res.Points
	if len(pts) != 3 {
		t.Fatalf("points = %d, want 3", len(pts))
	}
	if len(res.Skipped) != 0 {
		t.Fatalf("nothing should be skipped: %v", res.Skipped)
	}
	byName := map[string]SensitivityPoint{}
	for _, pt := range pts {
		byName[pt.Variable] = pt
	}
	if e := byName["c"].Elasticity; math.Abs(e-1) > 1e-6 {
		t.Errorf("elasticity(c) = %v, want 1", e)
	}
	if e := byName["M"].Elasticity; math.Abs(e-1) > 1e-6 {
		t.Errorf("elasticity(M) = %v, want 1", e)
	}
	if e := byName["N"].Elasticity; math.Abs(e-2) > 0.01 {
		t.Errorf("elasticity(N) = %v, want ~2", e)
	}
	// Sorted by |elasticity| descending: N first.
	if pts[0].Variable != "N" {
		t.Errorf("order wrong: %v first", pts[0].Variable)
	}
	// Baselines recorded.
	if byName["N"].Base != 1000 || byName["N"].BaseMakespan <= 0 {
		t.Errorf("baseline fields wrong: %+v", byName["N"])
	}
	if byName["N"].UpMakespan <= byName["N"].BaseMakespan {
		t.Errorf("up perturbation should increase quadratic makespan")
	}
}

func TestMonteCarloStochasticModel(t *testing.T) {
	// 70% path of cost 1, 30% path of cost 10: E[T] = 3.7.
	b := newWeightedBuilder(t)
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := New().MonteCarlo(Request{Model: m}, 400)
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs != 400 {
		t.Errorf("runs = %d", res.Runs)
	}
	if math.Abs(res.Mean-3.7) > 0.6 {
		t.Errorf("mean = %v, want ~3.7", res.Mean)
	}
	if res.Min != 1 || res.Max != 10 {
		t.Errorf("min/max = %v/%v, want 1/10", res.Min, res.Max)
	}
	if res.Std <= 0 {
		t.Errorf("stochastic model should have positive std: %v", res.Std)
	}
}

func TestMonteCarloDeterministicModel(t *testing.T) {
	res, err := New().MonteCarlo(Request{
		Model:   samples.Kernel6(),
		Globals: map[string]float64{"N": 10, "M": 1, "c": 1},
	}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Std != 0 || res.Min != res.Max {
		t.Errorf("deterministic model should have zero spread: %+v", res)
	}
	if math.Abs(res.Mean-45) > 1e-9 {
		t.Errorf("mean = %v, want 45", res.Mean)
	}
}

func TestMonteCarloValidation(t *testing.T) {
	if _, err := New().MonteCarlo(Request{Model: samples.Kernel6()}, 0); err == nil {
		t.Error("runs < 1 should fail")
	}
}

// newWeightedBuilder assembles the 70/30 branch model used by the Monte
// Carlo tests.
func newWeightedBuilder(t *testing.T) *builder.ModelBuilder {
	t.Helper()
	b := builder.New("mc")
	d := b.Diagram("main")
	d.Initial()
	d.Decision("dec")
	d.Action("Fast").Cost("1")
	d.Action("Slow").Cost("10")
	d.Merge("mrg")
	d.Final()
	d.Flow("initial", "dec")
	d.FlowWeighted("dec", "Fast", 0.7)
	d.FlowWeighted("dec", "Slow", 0.3)
	d.Flow("Fast", "mrg")
	d.Flow("Slow", "mrg")
	d.Flow("mrg", "final")
	return b
}

func TestSensitivitySkipsUnsetAndZero(t *testing.T) {
	req := Request{
		Model:   samples.Kernel6(),
		Globals: map[string]float64{"N": 10, "M": 1, "c": 0},
	}
	res, err := New().Sensitivity(req, []string{"c", "ghost"}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 0 {
		t.Errorf("zero-baseline and unset variables should be skipped: %v", res.Points)
	}
	// The skip is no longer silent: both variables are reported with a
	// reason, in request order.
	if len(res.Skipped) != 2 {
		t.Fatalf("skipped = %v, want 2 entries", res.Skipped)
	}
	if res.Skipped[0].Name != "c" || res.Skipped[0].Reason != "zero baseline" {
		t.Errorf("skipped[0] = %+v, want c / zero baseline", res.Skipped[0])
	}
	if res.Skipped[1].Name != "ghost" || res.Skipped[1].Reason != "not in request globals" {
		t.Errorf("skipped[1] = %+v, want ghost / not in request globals", res.Skipped[1])
	}
}

func TestSensitivityValidatesDelta(t *testing.T) {
	req := Request{Model: samples.Kernel6(), Globals: map[string]float64{"N": 10, "M": 1, "c": 1}}
	for _, d := range []float64{0, -0.1, 1, 2} {
		if _, err := New().Sensitivity(req, []string{"c"}, d); err == nil {
			t.Errorf("delta %v should be rejected", d)
		}
	}
}

func TestSensitivityDoesNotMutateRequest(t *testing.T) {
	globals := map[string]float64{"N": 10, "M": 1, "c": 1}
	req := Request{Model: samples.Kernel6(), Globals: globals}
	if _, err := New().Sensitivity(req, []string{"N"}, 0.1); err != nil {
		t.Fatal(err)
	}
	if globals["N"] != 10 {
		t.Errorf("request globals mutated: %v", globals)
	}
}
