package estimator

import (
	"encoding/json"
	"reflect"
	"testing"

	"prophet/internal/machine"
	"prophet/internal/obs"
	"prophet/internal/samples"
)

// TestObservabilityDeterminism guards the obs layer: two identical
// evaluations must produce the same stage-span sequence, the same metrics
// (modulo wall-clock-valued series) and bit-identical simulated-time
// telemetry. Only wall-clock fields (span start/duration, duration
// histograms) may differ between the runs.
func TestObservabilityDeterminism(t *testing.T) {
	runOnce := func() (*Estimate, obs.Snapshot) {
		reg := obs.NewRegistry()
		est, err := New().Estimate(Request{
			Model:  samples.Jacobi(),
			Params: machine.SystemParams{Nodes: 2, ProcessorsPerNode: 2, Processes: 4, Threads: 1},
			Globals: map[string]float64{
				"n": 32, "iters": 2, "flop": 1e-8,
			},
			Telemetry: true,
			Metrics:   reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		return est, reg.Snapshot()
	}

	a, snapA := runOnce()
	b, snapB := runOnce()

	// Stage spans: same names in the same order; durations are wall-clock
	// and may differ.
	if len(a.Stages) == 0 {
		t.Fatal("no stage spans recorded")
	}
	namesOf := func(spans []obs.Span) []string {
		names := make([]string, len(spans))
		for i, s := range spans {
			names[i] = s.Name
		}
		return names
	}
	if got, want := namesOf(b.Stages), namesOf(a.Stages); !reflect.DeepEqual(got, want) {
		t.Errorf("stage sequence differs between runs: %v vs %v", got, want)
	}

	// Scalar results must be bit-identical.
	if a.Makespan != b.Makespan {
		t.Errorf("makespan differs: %g vs %g", a.Makespan, b.Makespan)
	}
	if !reflect.DeepEqual(a.Globals, b.Globals) {
		t.Errorf("final globals differ: %v vs %v", a.Globals, b.Globals)
	}
	if !reflect.DeepEqual(a.CPUUtilization, b.CPUUtilization) {
		t.Errorf("cpu utilization differs: %v vs %v", a.CPUUtilization, b.CPUUtilization)
	}

	// Telemetry runs on simulated time only, so the whole series — sample
	// times, facility maps, event counts — must be identical.
	if a.Telemetry == nil || b.Telemetry == nil {
		t.Fatal("telemetry missing")
	}
	ja, err := json.Marshal(a.Telemetry)
	if err != nil {
		t.Fatal(err)
	}
	jb, err := json.Marshal(b.Telemetry)
	if err != nil {
		t.Fatal(err)
	}
	if string(ja) != string(jb) {
		t.Errorf("telemetry series differ:\n%s\nvs\n%s", ja, jb)
	}

	// Metrics: snapshots are deterministically ordered, so names must
	// match pairwise; values must match except for duration-valued
	// metrics, which carry wall-clock time.
	if len(snapA.Metrics) == 0 {
		t.Fatal("no metrics recorded")
	}
	if len(snapA.Metrics) != len(snapB.Metrics) {
		t.Fatalf("metric counts differ: %d vs %d", len(snapA.Metrics), len(snapB.Metrics))
	}
	for i := range snapA.Metrics {
		ma, mb := snapA.Metrics[i], snapB.Metrics[i]
		if ma.Name != mb.Name {
			t.Errorf("metric %d name differs: %q vs %q", i, ma.Name, mb.Name)
			continue
		}
		if isWallClockMetric(ma.Name) {
			continue
		}
		if !reflect.DeepEqual(ma, mb) {
			t.Errorf("metric %q differs between identical runs:\n%+v\nvs\n%+v", ma.Name, ma, mb)
		}
	}
}

// isWallClockMetric reports whether a metric's value measures host time
// (and is therefore exempt from the determinism contract).
func isWallClockMetric(name string) bool {
	for _, suffix := range []string{"_seconds", "_duration"} {
		if len(name) >= len(suffix) && name[len(name)-len(suffix):] == suffix {
			// estimate_makespan_seconds is simulated time, not wall clock.
			return name != "estimate_makespan_seconds"
		}
	}
	return false
}
