package estimator

import (
	"fmt"

	"prophet/internal/analytic"
	"prophet/internal/interp"
	"prophet/internal/obs"
)

// Mode selects how an evaluation is answered: by running the simulation
// engine, or by the closed-form analytic solver (internal/analytic),
// which propagates exact makespan moments over the flow graph in
// microseconds with no engine.
type Mode int

const (
	// ModeSimulate runs the simulation engine (the default; zero value).
	ModeSimulate Mode = iota
	// ModeAnalytic forces the closed-form solver. Evaluation fails with
	// the solver's error when the model is outside the analytic class
	// (multi-process systems, messaging/threading stereotypes,
	// stochastic loop counts, state mutation in weighted branches).
	ModeAnalytic
	// ModeAuto tries the analytic solver when the model and parameters
	// pass the structural eligibility scan, and falls back to the
	// simulation engine when the solver declines.
	ModeAuto
)

func (m Mode) String() string {
	switch m {
	case ModeAnalytic:
		return "analytic"
	case ModeAuto:
		return "auto"
	default:
		return "simulate"
	}
}

// ParseMode maps the external knob value to a Mode. The empty string
// selects simulation, the historical behavior.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "", "simulate":
		return ModeSimulate, nil
	case "analytic":
		return ModeAnalytic, nil
	case "auto":
		return ModeAuto, nil
	}
	return ModeSimulate, fmt.Errorf("estimator: unknown mode %q (want simulate, analytic or auto)", s)
}

// AnalyticError reports a mode=analytic request whose model is outside
// the closed-form class. It is the client's model/mode combination, not
// an estimator failure — servers map it alongside CheckError (422).
type AnalyticError struct{ Err error }

func (e *AnalyticError) Error() string { return "estimator: " + e.Err.Error() }
func (e *AnalyticError) Unwrap() error { return e.Err }

// runAnalytic answers the request with the closed-form solver. handled
// reports whether the request was answered (or definitively failed):
// when false — only possible in ModeAuto — the caller should fall back
// to the simulation engine.
//
// An analytic estimate has no trace, summary, or telemetry (there is no
// engine to observe); it carries the solved mean as Makespan, the
// solved Variance, and the final global values. The "analytic" stage
// span records the solve (outcome=solved|error) and the usual run
// metrics are published, plus estimator_analytic_solves_total or
// estimator_analytic_fallbacks_total.
func (e *Estimator) runAnalytic(pr *interp.Program, req Request, rec *obs.SpanRecorder) (*Estimate, error, bool) {
	m := pr.Model()
	if req.Mode == ModeAuto && !analytic.Eligible(m, req.Params) {
		if req.Metrics != nil {
			req.Metrics.Counter("estimator_analytic_fallbacks_total").Inc()
		}
		return nil, nil, false
	}
	_, ts, done := stage(req, rec, "analytic")
	res, err := analytic.Solve(m, analytic.Config{
		Params:   req.Params,
		Globals:  req.Globals,
		MaxSteps: req.MaxSteps,
	})
	if err != nil {
		ts.Annotate("outcome", "error")
		done()
		if req.Mode == ModeAuto {
			if req.Metrics != nil {
				req.Metrics.Counter("estimator_analytic_fallbacks_total").Inc()
			}
			return nil, nil, false
		}
		return nil, &AnalyticError{Err: err}, true
	}
	ts.Annotate("outcome", "solved")
	done()
	est := &Estimate{
		Makespan: res.Mean,
		Variance: res.Variance,
		Analytic: true,
		Globals:  res.Globals,
	}
	if req.Metrics != nil {
		req.Metrics.Counter("estimator_analytic_solves_total").Inc()
	}
	e.finish(req, est, rec, nil)
	return est, nil, true
}
