package estimator

import (
	"testing"

	"prophet/internal/machine"
	"prophet/internal/obs"
	"prophet/internal/samples"
)

func stageNames(spans []obs.Span) map[string]int {
	out := map[string]int{}
	for _, s := range spans {
		out[s.Name]++
	}
	return out
}

func TestEstimateRecordsStages(t *testing.T) {
	est, err := New().Estimate(Request{
		Model:   samples.Kernel6(),
		Globals: map[string]float64{"N": 100, "M": 10, "c": 1e-9},
	})
	if err != nil {
		t.Fatal(err)
	}
	got := stageNames(est.Stages)
	for _, want := range []string{"check", "compile", "simulate", "summarize"} {
		if got[want] != 1 {
			t.Errorf("stage %q recorded %d times, want 1 (stages: %v)", want, got[want], got)
		}
	}
	if got["trace-write"] != 0 {
		t.Error("trace-write should not appear without TracePath")
	}
}

func TestEstimateTraceWriteStage(t *testing.T) {
	dir := t.TempDir()
	est, err := New().Estimate(Request{
		Model:     samples.Kernel6(),
		Globals:   map[string]float64{"N": 10, "M": 2, "c": 1e-9},
		TracePath: dir + "/out.trace",
	})
	if err != nil {
		t.Fatal(err)
	}
	if stageNames(est.Stages)["trace-write"] != 1 {
		t.Errorf("trace-write stage missing: %v", est.Stages)
	}
}

func TestEstimateSkipCheckSkipsCheckStage(t *testing.T) {
	est, err := New().Estimate(Request{
		Model:     samples.Kernel6(),
		Globals:   map[string]float64{"N": 10, "M": 2, "c": 1e-9},
		SkipCheck: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stageNames(est.Stages)["check"] != 0 {
		t.Errorf("check stage should be absent under SkipCheck: %v", est.Stages)
	}
}

func TestEstimateTelemetry(t *testing.T) {
	est, err := New().Estimate(Request{
		Model: samples.Pipeline(3),
		Params: machine.SystemParams{
			Nodes: 2, ProcessorsPerNode: 1, Processes: 2, Threads: 1,
		},
		Globals:   map[string]float64{"work": 0.5},
		Telemetry: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	tel := est.Telemetry
	if tel == nil {
		t.Fatal("telemetry requested but nil")
	}
	if len(tel.Samples) == 0 {
		t.Fatal("no telemetry samples")
	}
	// The engine may run slightly past the makespan to drain in-flight
	// message deliveries, so the final sample is at or after it.
	last := tel.Samples[len(tel.Samples)-1]
	if last.Time < est.Makespan {
		t.Errorf("last sample at %v, want >= makespan %v", last.Time, est.Makespan)
	}
	if len(last.FacilityUtilization) == 0 {
		t.Error("samples should carry facility utilization")
	}
	var sawCPU bool
	for name := range last.FacilityUtilization {
		if name == "cpu.node0" {
			sawCPU = true
		}
	}
	if !sawCPU {
		t.Errorf("cpu.node0 missing from facility series: %v", last.FacilityUtilization)
	}
	if tel.EventCounts["spawn"] < 2 {
		t.Errorf("expected at least 2 spawns, got %v", tel.EventCounts)
	}
}

func TestEstimateWithoutTelemetryIsNil(t *testing.T) {
	est, err := New().Estimate(Request{
		Model:   samples.Kernel6(),
		Globals: map[string]float64{"N": 10, "M": 2, "c": 1e-9},
	})
	if err != nil {
		t.Fatal(err)
	}
	if est.Telemetry != nil {
		t.Error("telemetry must be nil unless requested")
	}
}

func TestEstimateMetricsRegistry(t *testing.T) {
	reg := obs.NewRegistry()
	_, err := New().Estimate(Request{
		Model:   samples.Kernel6(),
		Globals: map[string]float64{"N": 100, "M": 10, "c": 1e-9},
		Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("estimator_runs_total").Value(); got != 1 {
		t.Errorf("estimator_runs_total = %d, want 1", got)
	}
	snap := reg.Snapshot()
	byName := map[string]bool{}
	for _, m := range snap.Metrics {
		byName[m.Name] = true
	}
	for _, want := range []string{
		"estimate_makespan_seconds", "estimate_stage_seconds",
		"cpu_utilization", "sim_events_total", "sim_samples_total",
		"facility_utilization",
	} {
		if !byName[want] {
			t.Errorf("metric %q missing from registry snapshot", want)
		}
	}
}

func TestSweepProcessesSharedSpanRecorder(t *testing.T) {
	spans := obs.NewSpanRecorder()
	_, err := New().SweepProcesses(Request{
		Model:   samples.Pipeline(2),
		Globals: map[string]float64{"work": 0.1},
		Spans:   spans,
	}, []int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	got := stageNames(spans.Spans())
	if got["compile"] != 1 {
		t.Errorf("compile spans = %d, want 1", got["compile"])
	}
	if got["simulate"] != 3 {
		t.Errorf("simulate spans = %d, want 3 (one per sweep point)", got["simulate"])
	}
}

func TestEstimateSampleIntervalBoundsSeries(t *testing.T) {
	// Kernel6 collapses to very few events; the detailed model holds many
	// times, giving auto mode plenty of timestamps to sample.
	reqAuto := Request{
		Model:     samples.Kernel6Detailed(),
		Globals:   map[string]float64{"N": 10, "M": 4, "c": 1e-3},
		Telemetry: true,
	}
	estAuto, err := New().Estimate(reqAuto)
	if err != nil {
		t.Fatal(err)
	}
	reqCoarse := reqAuto
	reqCoarse.SampleInterval = estAuto.Makespan // only start + end cross the threshold
	estCoarse, err := New().Estimate(reqCoarse)
	if err != nil {
		t.Fatal(err)
	}
	if len(estCoarse.Telemetry.Samples) >= len(estAuto.Telemetry.Samples) {
		t.Errorf("coarse interval should thin the series: coarse=%d auto=%d",
			len(estCoarse.Telemetry.Samples), len(estAuto.Telemetry.Samples))
	}
}
