package estimator

import (
	"errors"
	"math"
	"path/filepath"
	"strings"
	"testing"

	"prophet/internal/builder"
	"prophet/internal/machine"
	"prophet/internal/samples"
	"prophet/internal/trace"
)

func TestEstimateSample(t *testing.T) {
	est, err := New().Estimate(Request{Model: samples.Sample()})
	if err != nil {
		t.Fatal(err)
	}
	want := 8.5 + 5 + 0.1 + 5
	if math.Abs(est.Makespan-want) > 1e-12 {
		t.Errorf("makespan = %v, want %v", est.Makespan, want)
	}
	if est.Summary == nil || est.Summary.Elements["A1"].Count != 1 {
		t.Errorf("summary missing")
	}
	if len(est.CPUUtilization) != 1 {
		t.Errorf("cpu utilization = %v", est.CPUUtilization)
	}
}

func TestEstimateWritesTraceFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.trace")
	_, err := New().Estimate(Request{Model: samples.Sample(), TracePath: path})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := trace.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Model != "sample" || len(tr.Events) == 0 {
		t.Errorf("trace file wrong: %q, %d events", tr.Model, len(tr.Events))
	}
}

func TestEstimateRejectsBrokenModel(t *testing.T) {
	b := builder.New("broken")
	d := b.Diagram("main")
	d.Action("A").Cost("Missing()")
	m, _ := b.Build()
	_, err := New().Estimate(Request{Model: m})
	var ce *CheckError
	if !errors.As(err, &ce) {
		t.Fatalf("want CheckError, got %v", err)
	}
	if !strings.Contains(ce.Error(), "broken") {
		t.Errorf("error should name the model: %v", ce)
	}
	// SkipCheck pushes the failure to compile/run instead.
	if _, err := New().Estimate(Request{Model: m, SkipCheck: true}); err == nil {
		t.Error("skip-check run should still fail somewhere")
	}
}

func TestEstimateNilModel(t *testing.T) {
	if _, err := New().Estimate(Request{}); err == nil {
		t.Error("nil model should fail")
	}
}

func TestSweepProcessesSpeedup(t *testing.T) {
	// Kernel6 is a serial model; replicated across processes with enough
	// processors it stays flat, so speedup ~1. Use an embarrassingly
	// parallel variant instead: work divided by processes.
	b := builder.New("par")
	b.Global("W", "double")
	b.Function("F", nil, "W / processes")
	d := b.Diagram("main")
	d.Initial()
	d.Action("Work").Cost("F()")
	d.Final()
	d.Chain("initial", "Work", "final")
	m, _ := b.Build()

	req := Request{
		Model:   m,
		Params:  machine.SystemParams{ProcessorsPerNode: 4, Threads: 1},
		Globals: map[string]float64{"W": 100},
	}
	pts, err := New().SweepProcesses(req, []int{1, 2, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0].Speedup != 1 || pts[0].Efficiency != 1 {
		t.Errorf("base point = %+v", pts[0])
	}
	// Perfect scaling: speedup equals process count.
	for i, want := range []float64{1, 2, 4, 8} {
		if math.Abs(pts[i].Speedup-want) > 1e-9 {
			t.Errorf("speedup[%d] = %v, want %v", i, pts[i].Speedup, want)
		}
		if math.Abs(pts[i].Efficiency-1) > 1e-9 {
			t.Errorf("efficiency[%d] = %v, want 1", i, pts[i].Efficiency)
		}
	}
	// Node counts auto-scale: 8 processes / 4 per node = 2 nodes.
	if pts[3].Nodes != 2 {
		t.Errorf("nodes at 8 procs = %d, want 2", pts[3].Nodes)
	}
}

func TestSweepProcessesFixedNodes(t *testing.T) {
	req := Request{
		Model:   samples.Kernel6(),
		Params:  machine.SystemParams{Nodes: 1, ProcessorsPerNode: 1, Threads: 1},
		Globals: map[string]float64{"N": 10, "M": 1, "c": 0.1},
	}
	pts, err := New().SweepProcesses(req, []int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	// Serial kernel replicated on one processor: makespan scales with P,
	// speedup collapses.
	if !(pts[2].Makespan > pts[1].Makespan && pts[1].Makespan > pts[0].Makespan) {
		t.Errorf("contention not visible: %+v", pts)
	}
	if pts[2].Nodes != 1 {
		t.Errorf("fixed node count not honored: %+v", pts[2])
	}
	if pts[2].Efficiency >= 0.5 {
		t.Errorf("efficiency should collapse: %+v", pts[2])
	}
}

func TestSweepGlobal(t *testing.T) {
	req := Request{
		Model:   samples.Kernel6(),
		Globals: map[string]float64{"M": 1, "c": 1},
	}
	pts, err := New().SweepGlobal(req, "N", []float64{10, 20, 40})
	if err != nil {
		t.Fatal(err)
	}
	// FK6 = M*(N-1)*N/2*c grows quadratically.
	for i, n := range []float64{10, 20, 40} {
		want := (n - 1) * n / 2
		if math.Abs(pts[i].Makespan-want) > 1e-9 {
			t.Errorf("N=%g: makespan = %v, want %v", n, pts[i].Makespan, want)
		}
		if pts[i].Value != n {
			t.Errorf("point value = %v", pts[i].Value)
		}
	}
	// The sweep must not leak values between points or clobber req.
	if req.Globals["N"] != 0 && req.Globals["N"] != 10 {
		// N was never in req.Globals; it must still be absent.
		t.Errorf("request globals mutated: %v", req.Globals)
	}
	if _, ok := req.Globals["N"]; ok {
		t.Errorf("request globals mutated: %v", req.Globals)
	}
}

func TestEstimateCompiledReuse(t *testing.T) {
	e := New()
	pr, err := e.Compile(samples.Kernel6())
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []float64{1, 2} {
		est, err := e.EstimateCompiled(pr, Request{Globals: map[string]float64{"N": 10, "M": 1, "c": c}})
		if err != nil {
			t.Fatal(err)
		}
		want := 45 * c
		if math.Abs(est.Makespan-want) > 1e-9 {
			t.Errorf("c=%v: makespan = %v, want %v", c, est.Makespan, want)
		}
	}
}

func TestCompileRejectsBroken(t *testing.T) {
	b := builder.New("broken")
	d := b.Diagram("main")
	d.Action("A").Cost("Missing()")
	m, _ := b.Build()
	if _, err := New().Compile(m); err == nil {
		t.Error("Compile should run the checker")
	}
}
