package estimator

import (
	"context"
	"fmt"
	"math"
	"sort"

	"prophet/internal/obs"
	"prophet/internal/runner"
)

// MonteCarloResult summarizes repeated stochastic evaluations.
type MonteCarloResult struct {
	Runs int
	Mean float64
	// Std is the sample standard deviation.
	Std float64
	Min float64
	Max float64
}

// MonteCarlo evaluates a model with probabilistic (weighted) branches
// across `runs` seeds and summarizes the makespan distribution. For
// deterministic models every run is identical and Std is 0.
//
// Runs are independent and fan out across Request.Parallel workers; the
// per-run seeds derive from Request.Seed and the run index (seed, seed+1,
// …, with seed 0 meaning 1), and the distribution is aggregated in run
// order, so the result is bit-identical at every worker count.
func (e *Estimator) MonteCarlo(req Request, runs int) (*MonteCarloResult, error) {
	makespans, err := e.MonteCarloMakespans(req, runs)
	if err != nil {
		return nil, err
	}
	return SummarizeMakespans(makespans), nil
}

// MonteCarloMakespans is the fan-out half of MonteCarlo: it returns the
// raw per-run makespans in run order (run i uses seed runner.Seeds(
// req.Seed, runs)[i]) without folding them into a distribution. This is
// the unit a sharded deployment ships around: a coordinator that
// decomposes a batch into sub-ranges (runner.Split), evaluates each with
// the sub-range's seed base (runner.SubSeed), concatenates the slices in
// range order, and folds once with SummarizeMakespans reproduces the
// single-node MonteCarlo result bit for bit.
func (e *Estimator) MonteCarloMakespans(req Request, runs int) ([]float64, error) {
	if runs < 1 {
		return nil, fmt.Errorf("estimator: monte carlo needs runs >= 1, got %d", runs)
	}
	pr, err := e.CompileCachedCtx(req.ctx(), req.Model)
	if err != nil {
		return nil, err
	}
	seeds := runner.Seeds(req.Seed, runs)
	return runner.Map(req.ctx(), runs, req.pool("mc-run"),
		func(ctx context.Context, i int) (float64, error) {
			r := req
			r.Seed = seeds[i]
			r.Context = ctx
			est, err := e.runMode(pr, r, true, obs.NewSpanRecorder())
			if err != nil {
				return 0, fmt.Errorf("estimator: monte carlo run %d: %w", i, err)
			}
			return est.Makespan, nil
		})
}

// SummarizeMakespans folds a makespan series into the Monte Carlo
// distribution summary. The fold runs in slice order with a fixed
// operation sequence, so every caller that presents the same series —
// single-node batches and sharded coordinators alike — produces the same
// floats bit for bit.
func SummarizeMakespans(makespans []float64) *MonteCarloResult {
	runs := len(makespans)
	res := &MonteCarloResult{Runs: runs}
	if runs == 0 {
		return res
	}
	var sum, sumSq float64
	for i, m := range makespans {
		sum += m
		sumSq += m * m
		if i == 0 || m < res.Min {
			res.Min = m
		}
		if i == 0 || m > res.Max {
			res.Max = m
		}
	}
	res.Mean = sum / float64(runs)
	if runs > 1 {
		variance := (sumSq - sum*sum/float64(runs)) / float64(runs-1)
		if variance > 0 {
			res.Std = math.Sqrt(variance)
		}
	}
	return res
}

// SensitivityPoint reports how strongly the predicted makespan reacts to
// one global model variable.
type SensitivityPoint struct {
	// Variable is the global's name.
	Variable string
	// Base is the variable's baseline value.
	Base float64
	// BaseMakespan is the prediction at the baseline.
	BaseMakespan float64
	// UpMakespan / DownMakespan are the predictions at Base*(1±Delta).
	UpMakespan   float64
	DownMakespan float64
	// Elasticity is the central-difference estimate of
	// d(log makespan) / d(log variable): 1.0 means linear influence,
	// 2.0 quadratic, ~0 means the variable does not matter.
	Elasticity float64
}

// SkippedVariable names a requested sensitivity variable that could not
// be perturbed, with the reason why.
type SkippedVariable struct {
	Name   string
	Reason string
}

func (s SkippedVariable) String() string { return s.Name + " (" + s.Reason + ")" }

// SensitivityResult carries the analysis: the elasticity points sorted by
// influence, plus every requested variable that had to be skipped.
type SensitivityResult struct {
	// Points holds one entry per analyzed variable, sorted by descending
	// |elasticity| (ties by name).
	Points []SensitivityPoint
	// Skipped lists requested variables that were not analyzed — unknown
	// names and zero baselines — in request order. Callers that silently
	// drop this field reproduce the old lossy behavior; surface it.
	Skipped []SkippedVariable
}

// Sensitivity perturbs each named global by ±delta (relative) around the
// values in req.Globals and reports the makespan elasticity of each — the
// model-based "which parameter should I tune" analysis that motivates
// performance modeling in the first place. Variables it cannot perturb —
// names absent from req.Globals, or zero baselines (relative perturbation
// is undefined there) — are reported in SensitivityResult.Skipped rather
// than silently dropped.
//
// The baseline and every perturbed evaluation are independent and fan
// out across Request.Parallel workers; results are keyed by job index,
// so the analysis is bit-identical at every worker count.
func (e *Estimator) Sensitivity(req Request, names []string, delta float64) (*SensitivityResult, error) {
	if delta <= 0 || delta >= 1 {
		return nil, fmt.Errorf("estimator: sensitivity delta must be in (0,1), got %g", delta)
	}
	pr, err := e.CompileCachedCtx(req.ctx(), req.Model)
	if err != nil {
		return nil, err
	}

	res := &SensitivityResult{}
	// Job plan: job 0 is the unperturbed baseline; each analyzable
	// variable contributes an up job and a down job.
	type job struct {
		name  string
		value float64
	}
	jobs := []job{{}} // baseline
	var vars []string
	var bases []float64
	for _, name := range names {
		bv, ok := req.Globals[name]
		switch {
		case !ok:
			res.Skipped = append(res.Skipped, SkippedVariable{Name: name, Reason: "not in request globals"})
		case bv == 0:
			res.Skipped = append(res.Skipped, SkippedVariable{Name: name, Reason: "zero baseline"})
		default:
			vars = append(vars, name)
			bases = append(bases, bv)
			jobs = append(jobs, job{name: name, value: bv * (1 + delta)})
			jobs = append(jobs, job{name: name, value: bv * (1 - delta)})
		}
	}

	makespans, err := runner.Map(req.ctx(), len(jobs), req.pool("sensitivity-run"),
		func(ctx context.Context, i int) (float64, error) {
			j := jobs[i]
			r := req
			r.Globals = make(map[string]float64, len(req.Globals)+1)
			for k, v := range req.Globals {
				r.Globals[k] = v
			}
			if j.name != "" {
				r.Globals[j.name] = j.value
			}
			r.Context = ctx
			est, err := e.runMode(pr, r, true, obs.NewSpanRecorder())
			if err != nil {
				if i == 0 {
					return 0, fmt.Errorf("estimator: sensitivity baseline: %w", err)
				}
				dir := "up"
				if i%2 == 0 {
					dir = "down"
				}
				return 0, fmt.Errorf("estimator: sensitivity %s %s: %w", j.name, dir, err)
			}
			return est.Makespan, nil
		})
	if err != nil {
		return nil, err
	}

	base := makespans[0]
	for vi, name := range vars {
		up := makespans[1+2*vi]
		down := makespans[2+2*vi]
		pt := SensitivityPoint{
			Variable:     name,
			Base:         bases[vi],
			BaseMakespan: base,
			UpMakespan:   up,
			DownMakespan: down,
		}
		if base > 0 {
			// Central difference of log(makespan) wrt log(variable).
			pt.Elasticity = (up - down) / (2 * delta * base)
		}
		res.Points = append(res.Points, pt)
	}
	sort.Slice(res.Points, func(i, j int) bool {
		ai := math.Abs(res.Points[i].Elasticity)
		aj := math.Abs(res.Points[j].Elasticity)
		if ai != aj {
			return ai > aj
		}
		return res.Points[i].Variable < res.Points[j].Variable
	})
	return res, nil
}
