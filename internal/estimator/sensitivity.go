package estimator

import (
	"fmt"
	"math"
	"sort"

	"prophet/internal/obs"
)

// MonteCarloResult summarizes repeated stochastic evaluations.
type MonteCarloResult struct {
	Runs int
	Mean float64
	// Std is the sample standard deviation.
	Std float64
	Min float64
	Max float64
}

// MonteCarlo evaluates a model with probabilistic (weighted) branches
// across `runs` seeds and summarizes the makespan distribution. For
// deterministic models every run is identical and Std is 0.
func (e *Estimator) MonteCarlo(req Request, runs int) (*MonteCarloResult, error) {
	if runs < 1 {
		return nil, fmt.Errorf("estimator: monte carlo needs runs >= 1, got %d", runs)
	}
	pr, err := e.Compile(req.Model)
	if err != nil {
		return nil, err
	}
	res := &MonteCarloResult{Runs: runs}
	var sum, sumSq float64
	for i := 0; i < runs; i++ {
		r := req
		r.Seed = int64(i + 1)
		est, err := e.runMode(pr, r, true, obs.NewSpanRecorder())
		if err != nil {
			return nil, fmt.Errorf("estimator: monte carlo run %d: %w", i, err)
		}
		m := est.Makespan
		sum += m
		sumSq += m * m
		if i == 0 || m < res.Min {
			res.Min = m
		}
		if i == 0 || m > res.Max {
			res.Max = m
		}
	}
	res.Mean = sum / float64(runs)
	if runs > 1 {
		variance := (sumSq - sum*sum/float64(runs)) / float64(runs-1)
		if variance > 0 {
			res.Std = math.Sqrt(variance)
		}
	}
	return res, nil
}

// SensitivityPoint reports how strongly the predicted makespan reacts to
// one global model variable.
type SensitivityPoint struct {
	// Variable is the global's name.
	Variable string
	// Base is the variable's baseline value.
	Base float64
	// BaseMakespan is the prediction at the baseline.
	BaseMakespan float64
	// UpMakespan / DownMakespan are the predictions at Base*(1±Delta).
	UpMakespan   float64
	DownMakespan float64
	// Elasticity is the central-difference estimate of
	// d(log makespan) / d(log variable): 1.0 means linear influence,
	// 2.0 quadratic, ~0 means the variable does not matter.
	Elasticity float64
}

// Sensitivity perturbs each named global by ±delta (relative) around the
// values in req.Globals and reports the makespan elasticity of each — the
// model-based "which parameter should I tune" analysis that motivates
// performance modeling in the first place. Variables with a zero baseline
// are skipped (relative perturbation is undefined there).
func (e *Estimator) Sensitivity(req Request, names []string, delta float64) ([]SensitivityPoint, error) {
	if delta <= 0 || delta >= 1 {
		return nil, fmt.Errorf("estimator: sensitivity delta must be in (0,1), got %g", delta)
	}
	pr, err := e.Compile(req.Model)
	if err != nil {
		return nil, err
	}
	runWith := func(name string, value float64) (float64, error) {
		r := req
		r.Globals = make(map[string]float64, len(req.Globals)+1)
		for k, v := range req.Globals {
			r.Globals[k] = v
		}
		if name != "" {
			r.Globals[name] = value
		}
		est, err := e.runMode(pr, r, true, obs.NewSpanRecorder())
		if err != nil {
			return 0, err
		}
		return est.Makespan, nil
	}

	base, err := runWith("", 0)
	if err != nil {
		return nil, fmt.Errorf("estimator: sensitivity baseline: %w", err)
	}

	var out []SensitivityPoint
	for _, name := range names {
		bv, ok := req.Globals[name]
		if !ok || bv == 0 {
			continue
		}
		up, err := runWith(name, bv*(1+delta))
		if err != nil {
			return nil, fmt.Errorf("estimator: sensitivity %s up: %w", name, err)
		}
		down, err := runWith(name, bv*(1-delta))
		if err != nil {
			return nil, fmt.Errorf("estimator: sensitivity %s down: %w", name, err)
		}
		pt := SensitivityPoint{
			Variable:     name,
			Base:         bv,
			BaseMakespan: base,
			UpMakespan:   up,
			DownMakespan: down,
		}
		if base > 0 {
			// Central difference of log(makespan) wrt log(variable).
			pt.Elasticity = (up - down) / (2 * delta * base)
		}
		out = append(out, pt)
	}
	sort.Slice(out, func(i, j int) bool {
		ai, aj := out[i].Elasticity, out[j].Elasticity
		if ai < 0 {
			ai = -ai
		}
		if aj < 0 {
			aj = -aj
		}
		if ai != aj {
			return ai > aj
		}
		return out[i].Variable < out[j].Variable
	})
	return out, nil
}
