package estimator

import (
	"math"
	"strings"
	"testing"

	"prophet/internal/machine"
	"prophet/internal/obs"
	"prophet/internal/samples"
)

func TestParseMode(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Mode
	}{
		{"", ModeSimulate},
		{"simulate", ModeSimulate},
		{"analytic", ModeAnalytic},
		{"auto", ModeAuto},
	} {
		got, err := ParseMode(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseMode(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	if _, err := ParseMode("bogus"); err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Errorf("ParseMode(bogus) error = %v, want named rejection", err)
	}
}

// mode=analytic must return the exact simulated makespan for a
// deterministic model without running the simulation: the analytic stage
// span appears, the simulate span does not, and the Analytic flag is set.
func TestEstimateModeAnalytic(t *testing.T) {
	spans := obs.NewSpanRecorder()
	reg := obs.NewRegistry()
	est, err := New().Estimate(Request{
		Model:   samples.Sample(),
		Mode:    ModeAnalytic,
		Spans:   spans,
		Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !est.Analytic {
		t.Error("Analytic flag not set")
	}
	want := 8.5 + 5 + 0.1 + 5
	if math.Abs(est.Makespan-want) > 1e-12 {
		t.Errorf("makespan = %v, want %v", est.Makespan, want)
	}
	if est.Variance != 0 {
		t.Errorf("deterministic variance = %v, want 0", est.Variance)
	}
	got := stageNames(spans.Spans())
	if got["analytic"] != 1 {
		t.Errorf("analytic spans = %d, want 1", got["analytic"])
	}
	if got["simulate"] != 0 {
		t.Errorf("simulate spans = %d, want 0", got["simulate"])
	}
	if reg.Counter("estimator_analytic_solves_total").Value() != 1 {
		t.Error("estimator_analytic_solves_total not incremented")
	}
}

// mode=analytic is strict: a request outside the closed-form class is an
// error, not a silent simulation.
func TestEstimateModeAnalyticRejectsMultiProcess(t *testing.T) {
	params := machine.DefaultParams()
	params.Processes = 4
	_, err := New().Estimate(Request{
		Model:  samples.Sample(),
		Mode:   ModeAnalytic,
		Params: params,
	})
	if err == nil || !strings.Contains(err.Error(), "single-process") {
		t.Fatalf("error = %v, want single-process rejection", err)
	}
}

// mode=auto falls back to simulation when the model or system is outside
// the analytic class, and counts the fallback.
func TestEstimateModeAutoFallsBack(t *testing.T) {
	params := machine.DefaultParams()
	params.Processes = 2
	reg := obs.NewRegistry()
	est, err := New().Estimate(Request{
		Model:   samples.Sample(),
		Mode:    ModeAuto,
		Params:  params,
		Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if est.Analytic {
		t.Error("multi-process auto request must fall back to simulation")
	}
	if est.Summary == nil {
		t.Error("fallback should produce a normal simulated estimate")
	}
	if reg.Counter("estimator_analytic_fallbacks_total").Value() != 1 {
		t.Error("estimator_analytic_fallbacks_total not incremented")
	}
}

// mode=auto solves analytically when it can.
func TestEstimateModeAutoSolves(t *testing.T) {
	est, err := New().Estimate(Request{Model: samples.Sample(), Mode: ModeAuto})
	if err != nil {
		t.Fatal(err)
	}
	if !est.Analytic {
		t.Error("eligible auto request should be solved analytically")
	}
}

// Regression test for the lowered-program cache key: two compiles of the
// same model content yield distinct *interp.Program pointers, but the
// second loweredFor call must hit the cache (keyed by content hash, not
// pointer identity) and return the same lowered program.
func TestLoweredCacheKeyedByContent(t *testing.T) {
	e := New()
	pr1, err := e.Compile(samples.Kernel6())
	if err != nil {
		t.Fatal(err)
	}
	pr2, err := e.Compile(samples.Kernel6())
	if err != nil {
		t.Fatal(err)
	}
	if pr1 == pr2 {
		t.Fatal("test needs two distinct compiled programs")
	}
	lp1, cached := e.loweredFor(pr1)
	if cached {
		t.Error("first lowering reported cached")
	}
	lp2, cached := e.loweredFor(pr2)
	if !cached {
		t.Error("same-content recompile missed the lowered cache")
	}
	if lp1 != lp2 {
		t.Error("cache hit returned a different lowered program")
	}
	// Same pointer again stays a hit via the identity memo.
	if _, cached := e.loweredFor(pr1); !cached {
		t.Error("identical pointer missed the cache")
	}
}
