// Package modelgen generates deterministic synthetic performance models
// for scalability benchmarking and property testing, in the tradition of
// the TTC transformation contests, which judge tools on generated model
// families of increasing size.
//
// A generated model is a tree of bounded-size activity diagrams: a main
// diagram whose segments are either leaf constructs (actions, guarded
// decisions, weighted decisions, fork/join sections) or composite
// constructs (activities and loops) whose bodies are further generated
// diagrams. Keeping each diagram small while growing the diagram tree is
// what lets node counts reach 10^6 without tripping the quadratic
// per-diagram algorithms downstream (convergence search, name-resolved
// flow building).
//
// Generation is a pure function of Params: the same seed and shape
// parameters produce byte-identical models on every run and platform
// (only slice iteration and a seeded math/rand source are used — no map
// iteration). Generated models are checker-clean by construction: every
// action is stereotyped, guards reference declared variables, branch
// weights sum to one, and every performance element name is unique
// model-wide.
package modelgen

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"

	"prophet/internal/builder"
	"prophet/internal/uml"
)

// Mix weighs the construct kinds used for diagram segments. Action,
// Decision, Weighted and Fork select among leaf segments; Activity and
// Loop select the flavor of composite segments (which spawn child
// diagrams). Weights are relative, not probabilities.
type Mix struct {
	Action   float64 `json:"action"`
	Activity float64 `json:"activity"`
	Loop     float64 `json:"loop"`
	Decision float64 `json:"decision"`
	Weighted float64 `json:"weighted"`
	Fork     float64 `json:"fork"`
}

// DefaultMix is an action-heavy blend that exercises every construct.
func DefaultMix() Mix {
	return Mix{Action: 0.50, Activity: 0.12, Loop: 0.10, Decision: 0.12, Weighted: 0.06, Fork: 0.10}
}

// isZero reports whether the mix was left unset.
func (x Mix) isZero() bool {
	return x == Mix{}
}

// Params describes one synthetic model. The zero values of the shape
// fields select documented defaults; Nodes is required. Params marshals
// to JSON so a generated corpus entry can be committed as a tiny sidecar
// (seed + shape) instead of megabytes of XMI.
type Params struct {
	// Name is the model name; default "gen".
	Name string `json:"name,omitempty"`
	// Seed drives all randomness; the same seed reproduces the model.
	Seed int64 `json:"seed"`
	// Nodes is the target total node count across all diagrams. The
	// generated model lands within a few percent of it.
	Nodes int `json:"nodes"`
	// Width is the number of leaf segments per diagram; default 8.
	Width int `json:"width,omitempty"`
	// Depth caps diagram nesting; default 6.
	Depth int `json:"depth,omitempty"`
	// Branching caps decision/fork fan-out (minimum 2); default 3.
	Branching int `json:"branching,omitempty"`
	// Mix weighs segment kinds; the zero value selects DefaultMix.
	Mix Mix `json:"mix,omitempty"`
}

// withDefaults resolves zero-valued fields.
func (p Params) withDefaults() Params {
	if p.Name == "" {
		p.Name = "gen"
	}
	if p.Width <= 0 {
		p.Width = 8
	}
	if p.Depth <= 0 {
		p.Depth = 6
	}
	if p.Branching < 2 {
		p.Branching = 3
	}
	if p.Mix.isZero() {
		p.Mix = DefaultMix()
	}
	return p
}

// job is one pending diagram, processed FIFO (breadth-first).
type job struct {
	name  string
	depth int
}

// gen carries generation state.
type gen struct {
	p   Params
	rng *rand.Rand
	mb  *builder.ModelBuilder

	budget   int     // nodes left to create
	children int     // child diagrams left to create
	maxKids  int     // spawn cap per diagram
	avgLeaf  float64 // mix-weighted node cost of one leaf segment
	queue    []job   // pending diagrams
	seq      int     // performance-element name counter (model-wide)
	subSeq   int     // child diagram name counter

	mainSpawns int // forced-coverage counters for the main diagram
	mainLeaves int
}

// Generate builds the synthetic model described by p. The result is
// deterministic in p and passes the checker with no diagnostics of any
// severity.
func Generate(p Params) (*uml.Model, error) {
	p = p.withDefaults()
	if p.Nodes < 3 {
		return nil, fmt.Errorf("modelgen: Nodes = %d, need at least 3 (initial, action, final)", p.Nodes)
	}

	// Plan the diagram count from the expected per-diagram node cost:
	// initial + final, one local node per spawned child, and Width leaf
	// segments at the mix-weighted average leaf cost (an action is 1 node,
	// a decision/weighted/fork section is fan-out + 2).
	avgK := (2.0 + float64(p.Branching)) / 2.0
	leafDen := p.Mix.Action + p.Mix.Decision + p.Mix.Weighted + p.Mix.Fork
	if leafDen <= 0 {
		return nil, fmt.Errorf("modelgen: mix has no leaf weight (action/decision/weighted/fork all zero)")
	}
	avgLeaf := (p.Mix.Action + (p.Mix.Decision+p.Mix.Weighted+p.Mix.Fork)*(avgK+2)) / leafDen
	if p.Mix.Activity+p.Mix.Loop <= 0 {
		return nil, fmt.Errorf("modelgen: mix has no composite weight (activity/loop both zero)")
	}
	perDiagram := 3.0 + float64(p.Width)*avgLeaf
	diagrams := int(math.Round(float64(p.Nodes) / perDiagram))
	if diagrams < 1 {
		diagrams = 1
	}
	if p.Nodes >= 48 && diagrams < 3 {
		diagrams = 3 // guarantee activity and loop coverage at small sizes
	}
	maxKids := 0
	if diagrams > 1 {
		maxKids = int(math.Ceil(math.Pow(float64(diagrams-1), 1.0/float64(p.Depth))))
		if maxKids < 1 {
			maxKids = 1
		}
	}

	g := &gen{
		p:        p,
		rng:      rand.New(rand.NewSource(p.Seed)),
		mb:       builder.New(p.Name),
		budget:   p.Nodes,
		children: diagrams - 1,
		maxKids:  maxKids,
		avgLeaf:  avgLeaf,
	}
	// x feeds guards, c feeds costs; both initialized so a generated model
	// simulates without any externally supplied globals.
	g.mb.GlobalInit("x", "double", "0.25")
	g.mb.GlobalInit("c", "double", "0.000001")

	g.queue = append(g.queue, job{name: "main", depth: 0})
	for len(g.queue) > 0 {
		j := g.queue[0]
		g.queue = g.queue[1:]
		g.diagram(j)
	}
	return g.mb.Build()
}

// MustGenerate is Generate for tests and fixtures with known-good params.
func MustGenerate(p Params) *uml.Model {
	m, err := Generate(p)
	if err != nil {
		panic(err)
	}
	return m
}

// diagram emits one bounded diagram: initial, spawn segments (children),
// leaf segments, final, all chained linearly.
func (g *gen) diagram(j job) {
	db := g.mb.Diagram(j.name)
	db.Initial()
	g.budget--
	prev := "initial"

	spawns := 0
	if j.depth < g.p.Depth && g.children > 0 {
		spawns = g.maxKids
		if spawns > g.children {
			spawns = g.children
		}
		g.children -= spawns
	}
	for i := 0; i < spawns; i++ {
		name := g.spawnSegment(db, j)
		db.Flow(prev, name)
		prev = name
	}

	// Each diagram takes its share of the remaining node budget, so the
	// plan self-corrects as generation proceeds and the last diagram is
	// no bigger than any other.
	remaining := len(g.queue) + 1 + g.children
	share := float64(g.budget) / float64(remaining)
	leafSegs := int(math.Round((share - 2 - float64(spawns)) / g.avgLeaf))
	if leafSegs < 1 {
		leafSegs = 1
	}
	if max := 4 * g.p.Width; leafSegs > max {
		leafSegs = max
	}
	if j.depth == 0 && leafSegs < 3 {
		leafSegs = 3 // room for the forced decision/weighted/fork coverage
	}
	for i := 0; i < leafSegs; i++ {
		if i >= 1 && g.budget <= 0 {
			break // ran dry; finish the diagram minimal but valid
		}
		entry, exit := g.leafSegment(db, j)
		db.Flow(prev, entry)
		prev = exit
	}

	db.Final()
	g.budget--
	db.Flow(prev, "final")
}

// spawnSegment adds a composite node (activity or loop) backed by a newly
// enqueued child diagram, and returns its name. The main diagram's first
// two spawns are pinned to one activity and one loop so every composite
// kind is reachable even in small models.
func (g *gen) spawnSegment(db *builder.DiagramBuilder, j job) string {
	g.subSeq++
	child := "sub" + strconv.Itoa(g.subSeq)
	g.queue = append(g.queue, job{name: child, depth: j.depth + 1})

	loop := false
	if j.depth == 0 && g.mainSpawns < 2 {
		loop = g.mainSpawns == 1
		g.mainSpawns++
	} else {
		loop = g.rng.Float64()*(g.p.Mix.Activity+g.p.Mix.Loop) >= g.p.Mix.Activity
	}
	g.seq++
	g.budget--
	if loop {
		name := "L" + strconv.Itoa(g.seq)
		count := "2"
		if g.rng.Float64() < 0.3 {
			count = "3"
		}
		db.Loop(name, count, child).Var("i" + strconv.Itoa(g.seq))
		return name
	}
	name := "SA" + strconv.Itoa(g.seq)
	db.Activity(name, child)
	return name
}

// leafKind names the leaf segment variants.
type leafKind int

const (
	leafAction leafKind = iota
	leafDecision
	leafWeighted
	leafFork
)

// leafSegment adds one leaf construct and returns its entry and exit node
// names for chaining. The main diagram's first three leaves are pinned to
// decision, weighted decision, and fork so every node kind is reachable.
func (g *gen) leafSegment(db *builder.DiagramBuilder, j job) (entry, exit string) {
	var kind leafKind
	if j.depth == 0 && g.mainLeaves < 3 {
		kind = []leafKind{leafDecision, leafWeighted, leafFork}[g.mainLeaves]
		g.mainLeaves++
	} else {
		mix := g.p.Mix
		r := g.rng.Float64() * (mix.Action + mix.Decision + mix.Weighted + mix.Fork)
		switch {
		case r < mix.Action:
			kind = leafAction
		case r < mix.Action+mix.Decision:
			kind = leafDecision
		case r < mix.Action+mix.Decision+mix.Weighted:
			kind = leafWeighted
		default:
			kind = leafFork
		}
	}

	switch kind {
	case leafAction:
		name := g.action(db)
		return name, name
	case leafFork:
		g.seq++
		fork := "fork" + strconv.Itoa(g.seq)
		join := "join" + strconv.Itoa(g.seq)
		db.Fork(fork)
		g.budget--
		k := g.fanout()
		for i := 0; i < k; i++ {
			a := g.action(db)
			db.Flow(fork, a)
			db.Flow(a, join)
		}
		db.Join(join)
		g.budget--
		return fork, join
	default: // leafDecision, leafWeighted
		g.seq++
		dec := "dec" + strconv.Itoa(g.seq)
		mrg := "mrg" + strconv.Itoa(g.seq)
		db.Decision(dec)
		g.budget--
		k := g.fanout()
		for i := 0; i < k; i++ {
			a := g.action(db)
			if kind == leafWeighted {
				db.FlowWeighted(dec, a, 1.0/float64(k))
			} else if i < k-1 {
				db.FlowIf(dec, a, "x < "+strconv.Itoa(i+1))
			} else {
				db.FlowIf(dec, a, "else")
			}
			db.Flow(a, mrg)
		}
		db.Merge(mrg)
		g.budget--
		return dec, mrg
	}
}

// action adds one costed action node with a model-wide unique name.
func (g *gen) action(db *builder.DiagramBuilder) string {
	g.seq++
	g.budget--
	name := "A" + strconv.Itoa(g.seq)
	costs := [...]string{"c", "2*c", "3*c", "c+c"}
	db.Action(name).Cost(costs[g.rng.Intn(len(costs))])
	return name
}

// fanout picks a decision/fork fan-out in [2, Branching].
func (g *gen) fanout() int {
	return 2 + g.rng.Intn(g.p.Branching-1)
}

// Describe returns the generated model's element totals, convenient for
// benchmark labels and sidecar validation.
func Describe(m *uml.Model) uml.Stats { return m.Stats() }
