package modelgen

import (
	"math"
	"testing"

	"prophet/internal/checker"
	"prophet/internal/uml"
	"prophet/internal/xmi"
)

func TestDeterministic(t *testing.T) {
	p := Params{Seed: 7, Nodes: 2000}
	h1, err := xmi.Hash(MustGenerate(p))
	if err != nil {
		t.Fatal(err)
	}
	h2, err := xmi.Hash(MustGenerate(p))
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Fatalf("same params, different models: %s vs %s", h1, h2)
	}
	h3, err := xmi.Hash(MustGenerate(Params{Seed: 8, Nodes: 2000}))
	if err != nil {
		t.Fatal(err)
	}
	if h1 == h3 {
		t.Fatal("different seeds produced identical models")
	}
}

func TestCheckerClean(t *testing.T) {
	for _, nodes := range []int{60, 1000, 10000} {
		m := MustGenerate(Params{Seed: 3, Nodes: nodes})
		rep := checker.New().Check(m)
		if len(rep.Diagnostics) != 0 {
			for i, d := range rep.Diagnostics {
				if i >= 10 {
					t.Logf("... and %d more", len(rep.Diagnostics)-10)
					break
				}
				t.Log(d)
			}
			t.Fatalf("Nodes=%d: generated model has %d diagnostics, want a clean report",
				nodes, len(rep.Diagnostics))
		}
	}
}

func TestAllNodeKindsReachable(t *testing.T) {
	m := MustGenerate(Params{Seed: 1, Nodes: 200})
	have := map[uml.Kind]bool{}
	for _, d := range m.Diagrams() {
		for _, n := range d.Nodes() {
			have[n.Kind()] = true
		}
	}
	for _, k := range []uml.Kind{
		uml.KindAction, uml.KindActivity, uml.KindLoop, uml.KindInitial,
		uml.KindFinal, uml.KindDecision, uml.KindMerge, uml.KindFork, uml.KindJoin,
	} {
		if !have[k] {
			t.Errorf("node kind %v unreachable in generated model", k)
		}
	}
	// Both guarded and weighted decisions must occur (they are distinct
	// checker-legal shapes even though both use KindDecision).
	guarded, weighted := false, false
	for _, d := range m.Diagrams() {
		for _, e := range d.Edges() {
			if e.Guard != "" {
				guarded = true
			}
			if e.Weight > 0 {
				weighted = true
			}
		}
	}
	if !guarded || !weighted {
		t.Errorf("guarded=%v weighted=%v, want both edge shapes", guarded, weighted)
	}
}

func TestSizeAccuracy(t *testing.T) {
	for _, target := range []int{1000, 10000, 100000} {
		m := MustGenerate(Params{Seed: 11, Nodes: target})
		got := m.Stats().Nodes
		if err := math.Abs(float64(got-target)) / float64(target); err > 0.10 {
			t.Errorf("Nodes=%d: generated %d nodes (%.1f%% off, want within 10%%)",
				target, got, err*100)
		}
	}
}

func TestSmallModels(t *testing.T) {
	for _, target := range []int{3, 10, 47} {
		m := MustGenerate(Params{Seed: 5, Nodes: target})
		if rep := checker.New().Check(m); rep.HasErrors() {
			for _, d := range rep.Diagnostics {
				t.Log(d)
			}
			t.Fatalf("Nodes=%d: generated model has errors", target)
		}
	}
	if _, err := Generate(Params{Seed: 1, Nodes: 2}); err == nil {
		t.Fatal("Nodes=2 should be rejected")
	}
}

func TestRoundTripsThroughXMI(t *testing.T) {
	m := MustGenerate(Params{Seed: 9, Nodes: 1500})
	s, err := xmi.EncodeString(m)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := xmi.DecodeString(s)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := xmi.EncodeString(m2)
	if err != nil {
		t.Fatal(err)
	}
	if s != s2 {
		t.Fatal("generated model does not round-trip through XMI")
	}
}

func TestBoundedDiagramSize(t *testing.T) {
	m := MustGenerate(Params{Seed: 2, Nodes: 50000})
	maxNodes := 0
	for _, d := range m.Diagrams() {
		if n := len(d.Nodes()); n > maxNodes {
			maxNodes = n
		}
	}
	// Downstream convergence search is quadratic per diagram; the
	// generator must keep diagrams bounded no matter the total size.
	if maxNodes > 200 {
		t.Fatalf("largest diagram has %d nodes; generator should keep diagrams bounded", maxNodes)
	}
}
