package trace

import (
	"math"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"prophet/internal/testutil"
)

func sampleTrace() *Trace {
	tr := &Trace{Model: "sample"}
	tr.SetMeta("processes", "2")
	tr.SetMeta("threads", "1")
	// pid 0: A1 [0,8], A4 [8,13]; pid 1: A2 [1,4]
	tr.Append(Event{T: 0, PID: 0, TID: 0, Kind: Enter, Elem: "e1", Name: "A1"})
	tr.Append(Event{T: 1, PID: 1, TID: 0, Kind: Enter, Elem: "e2", Name: "A2"})
	tr.Append(Event{T: 4, PID: 1, TID: 0, Kind: Leave, Elem: "e2", Name: "A2"})
	tr.Append(Event{T: 8, PID: 0, TID: 0, Kind: Leave, Elem: "e1", Name: "A1"})
	tr.Append(Event{T: 8, PID: 0, TID: 0, Kind: Enter, Elem: "e3", Name: "A4"})
	tr.Append(Event{T: 13, PID: 0, TID: 0, Kind: Leave, Elem: "e3", Name: "A4"})
	return tr
}

func TestRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var sb strings.Builder
	if err := Write(&sb, tr); err != nil {
		t.Fatal(err)
	}
	got, err := Read(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Model != "sample" {
		t.Errorf("model = %q", got.Model)
	}
	if v, ok := got.GetMeta("processes"); !ok || v != "2" {
		t.Errorf("meta lost: %q %v", v, ok)
	}
	if len(got.Events) != len(tr.Events) {
		t.Fatalf("events = %d, want %d", len(got.Events), len(tr.Events))
	}
	for i, ev := range tr.Events {
		if got.Events[i] != ev {
			t.Errorf("event %d differs: %+v vs %+v", i, got.Events[i], ev)
		}
	}
}

func TestRoundTripFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.trace")
	if err := Save(path, sampleTrace()); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Makespan() != 13 {
		t.Errorf("makespan = %v", got.Makespan())
	}
}

func TestQuickTimeRoundTrip(t *testing.T) {
	f := func(tv float64) bool {
		if math.IsNaN(tv) || math.IsInf(tv, 0) || tv < 0 {
			return true
		}
		tr := &Trace{Model: "q"}
		tr.Append(Event{T: tv, Kind: Mark, Elem: "e", Name: "n"})
		var sb strings.Builder
		if err := Write(&sb, tr); err != nil {
			return false
		}
		got, err := Read(strings.NewReader(sb.String()))
		if err != nil {
			return false
		}
		return len(got.Events) == 1 && got.Events[0].T == tv
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"short row": "1.0\t0\t0\tenter\te1",
		"bad time":  "x\t0\t0\tenter\te1\tA1",
		"bad pid":   "1.0\tx\t0\tenter\te1\tA1",
		"bad tid":   "1.0\t0\tx\tenter\te1\tA1",
	}
	for name, src := range cases {
		if _, err := Read(strings.NewReader(src)); err == nil {
			t.Errorf("%s: should fail", name)
		}
	}
}

func TestLoadMissing(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Error("missing file should fail")
	}
}

func TestSetMetaReplaces(t *testing.T) {
	tr := &Trace{}
	tr.SetMeta("k", "1")
	tr.SetMeta("k", "2")
	if len(tr.Meta) != 1 {
		t.Fatalf("meta entries = %d", len(tr.Meta))
	}
	if v, _ := tr.GetMeta("k"); v != "2" {
		t.Errorf("meta = %q", v)
	}
	if _, ok := tr.GetMeta("absent"); ok {
		t.Error("absent meta should report false")
	}
}

func TestSummarize(t *testing.T) {
	sum, err := Summarize(sampleTrace())
	if err != nil {
		t.Fatal(err)
	}
	testutil.AssertTime(t, "makespan", sum.Makespan, 13)
	if sum.Processes != 2 {
		t.Errorf("processes = %d", sum.Processes)
	}
	a1 := sum.Elements["A1"]
	if a1.Count != 1 || a1.Total != 8 || a1.Mean() != 8 {
		t.Errorf("A1 stats = %+v", a1)
	}
	a2 := sum.Elements["A2"]
	if a2.Total != 3 {
		t.Errorf("A2 stats = %+v", a2)
	}
	if busy := sum.BusyByPID[0]; busy != 13 {
		t.Errorf("pid0 busy = %v, want 13", busy)
	}
	if busy := sum.BusyByPID[1]; busy != 3 {
		t.Errorf("pid1 busy = %v, want 3", busy)
	}
}

func TestSummarizeEmptyTrace(t *testing.T) {
	for name, tr := range map[string]*Trace{"nil": nil, "zero-events": {}} {
		sum, err := Summarize(tr)
		if err != nil {
			t.Fatalf("%s trace: %v", name, err)
		}
		if sum.Makespan != 0 || sum.Processes != 0 || len(sum.Elements) != 0 {
			t.Errorf("%s trace: summary = %+v, want empty", name, sum)
		}
		// The report must render without NaNs or panics.
		if rep := sum.Report(); strings.Contains(rep, "NaN") {
			t.Errorf("%s trace report contains NaN:\n%s", name, rep)
		}
	}
}

func TestSummarizeNested(t *testing.T) {
	tr := &Trace{}
	// outer [0,10] contains inner [2,5]
	tr.Append(Event{T: 0, Kind: Enter, Elem: "o", Name: "Outer"})
	tr.Append(Event{T: 2, Kind: Enter, Elem: "i", Name: "Inner"})
	tr.Append(Event{T: 5, Kind: Leave, Elem: "i", Name: "Inner"})
	tr.Append(Event{T: 10, Kind: Leave, Elem: "o", Name: "Outer"})
	sum, err := Summarize(tr)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Elements["Outer"].Total != 10 || sum.Elements["Inner"].Total != 3 {
		t.Errorf("nested stats wrong: %+v", sum.Elements)
	}
	if sum.BusyByPID[0] != 10 {
		t.Errorf("nested busy should not double count: %v", sum.BusyByPID[0])
	}
}

func TestSummarizeMultipleExecutions(t *testing.T) {
	tr := &Trace{}
	for i := 0; i < 3; i++ {
		base := float64(i * 10)
		tr.Append(Event{T: base, Kind: Enter, Elem: "k", Name: "K"})
		tr.Append(Event{T: base + float64(i+1), Kind: Leave, Elem: "k", Name: "K"})
	}
	sum, err := Summarize(tr)
	if err != nil {
		t.Fatal(err)
	}
	k := sum.Elements["K"]
	if k.Count != 3 || k.Total != 6 || k.Min != 1 || k.Max != 3 || k.Mean() != 2 {
		t.Errorf("K stats = %+v", k)
	}
}

// TestSummarizeInterleavedForkBranches pins the concurrent-lane pairing:
// fork branches run on the same (pid, tid) trace lane, so two branches
// with equal-cost actions interleave enter A, enter B, leave A, leave B.
// Summarize must pair each leave with the matching element's enter, not
// reject the trace as mis-nested.
func TestSummarizeInterleavedForkBranches(t *testing.T) {
	tr := &Trace{}
	tr.Append(Event{T: 0, Kind: Enter, Elem: "a", Name: "A"})
	tr.Append(Event{T: 0, Kind: Enter, Elem: "b", Name: "B"})
	tr.Append(Event{T: 2, Kind: Leave, Elem: "a", Name: "A"})
	tr.Append(Event{T: 3, Kind: Leave, Elem: "b", Name: "B"})
	sum, err := Summarize(tr)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Elements["A"].Total != 2 || sum.Elements["B"].Total != 3 {
		t.Errorf("interleaved stats wrong: %+v", sum.Elements)
	}
	if sum.BusyByPID[0] != 3 {
		t.Errorf("busy time should span the overlap once: %v", sum.BusyByPID[0])
	}
}

func TestSummarizeErrors(t *testing.T) {
	t.Run("leave without enter", func(t *testing.T) {
		tr := &Trace{}
		tr.Append(Event{T: 1, Kind: Leave, Elem: "x", Name: "X"})
		if _, err := Summarize(tr); err == nil {
			t.Error("should fail")
		}
	})
	t.Run("mismatched pair", func(t *testing.T) {
		tr := &Trace{}
		tr.Append(Event{T: 0, Kind: Enter, Elem: "a", Name: "A"})
		tr.Append(Event{T: 1, Kind: Leave, Elem: "b", Name: "B"})
		if _, err := Summarize(tr); err == nil {
			t.Error("should fail")
		}
	})
	t.Run("unclosed element", func(t *testing.T) {
		tr := &Trace{}
		tr.Append(Event{T: 0, Kind: Enter, Elem: "a", Name: "A"})
		if _, err := Summarize(tr); err == nil {
			t.Error("should fail")
		}
	})
}

func TestReport(t *testing.T) {
	sum, err := Summarize(sampleTrace())
	if err != nil {
		t.Fatal(err)
	}
	rep := sum.Report()
	for _, want := range []string{"makespan: 13", "A1", "A2", "A4", "pid   0", "pid   1"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
	// Sorted by descending total: A1 (8) before A4 (5) before A2 (3).
	if !(strings.Index(rep, "A1") < strings.Index(rep, "A4") &&
		strings.Index(rep, "A4") < strings.Index(rep, "A2")) {
		t.Errorf("rows not sorted by total:\n%s", rep)
	}
}

func TestGantt(t *testing.T) {
	g := Gantt(sampleTrace(), 26)
	if !strings.Contains(g, "pid   0") || !strings.Contains(g, "pid   1") {
		t.Errorf("lanes missing:\n%s", g)
	}
	if !strings.Contains(g, "legend:") || !strings.Contains(g, "=A1") {
		t.Errorf("legend missing:\n%s", g)
	}
	// Lane 0 should start with the A1 glyph and contain no gap between A1
	// and A4 (they abut at t=8).
	lines := strings.Split(g, "\n")
	var lane0 string
	for _, ln := range lines {
		if strings.HasPrefix(ln, "pid   0") {
			lane0 = ln
		}
	}
	if strings.Count(lane0, ".") != 0 {
		t.Errorf("pid0 lane should be fully busy:\n%s", g)
	}
}

func TestGanttEmpty(t *testing.T) {
	if g := Gantt(&Trace{}, 40); !strings.Contains(g, "empty") {
		t.Errorf("empty trace rendering: %q", g)
	}
}

func TestGanttGlyphCollision(t *testing.T) {
	tr := &Trace{}
	// Two elements starting with the same letter.
	tr.Append(Event{T: 0, PID: 0, Kind: Enter, Elem: "a", Name: "Alpha"})
	tr.Append(Event{T: 5, PID: 0, Kind: Leave, Elem: "a", Name: "Alpha"})
	tr.Append(Event{T: 5, PID: 0, Kind: Enter, Elem: "b", Name: "Avocado"})
	tr.Append(Event{T: 9, PID: 0, Kind: Leave, Elem: "b", Name: "Avocado"})
	g := Gantt(tr, 20)
	if !strings.Contains(g, "=Alpha") || !strings.Contains(g, "=Avocado") {
		t.Errorf("legend incomplete:\n%s", g)
	}
	// Glyphs must differ.
	legend := g[strings.Index(g, "legend:"):]
	parts := strings.Split(legend, ", ")
	if len(parts) >= 2 && parts[0][len("legend: ")] == parts[1][0] {
		t.Errorf("glyph collision:\n%s", g)
	}
}
