package trace

import (
	"math"
	"strings"
	"testing"
)

func traceWith(elems map[string]float64) *Trace {
	tr := &Trace{Model: "t"}
	t := 0.0
	for _, name := range []string{"A", "B", "C", "D"} {
		dur, ok := elems[name]
		if !ok {
			continue
		}
		tr.Append(Event{T: t, Kind: Enter, Elem: name, Name: name})
		tr.Append(Event{T: t + dur, Kind: Leave, Elem: name, Name: name})
		t += dur
	}
	return tr
}

func TestCompare(t *testing.T) {
	a := traceWith(map[string]float64{"A": 10, "B": 5, "C": 2})
	b := traceWith(map[string]float64{"A": 10, "B": 8, "D": 3})
	rows, dm, err := Compare(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if dm != (10+8+3)-(10+5+2) {
		t.Errorf("makespan delta = %v", dm)
	}
	byName := map[string]DeltaRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	if r := byName["A"]; r.Delta != 0 || r.Ratio != 1 {
		t.Errorf("A row = %+v", r)
	}
	if r := byName["B"]; r.Delta != 3 || math.Abs(r.Ratio-1.6) > 1e-12 {
		t.Errorf("B row = %+v", r)
	}
	if r := byName["C"]; r.Delta != -2 || r.Ratio != 0 {
		t.Errorf("C (vanished) row = %+v", r)
	}
	if r := byName["D"]; r.Delta != 3 || !math.IsInf(r.Ratio, 1) {
		t.Errorf("D (new) row = %+v", r)
	}
	// Ordered by |delta| descending: B, C, D before A (B=3 ties D=3 and
	// C=2 < 3; A=0 last).
	if rows[len(rows)-1].Name != "A" {
		t.Errorf("unchanged element should sort last: %v", rows)
	}
}

func TestCompareErrors(t *testing.T) {
	bad := &Trace{}
	bad.Append(Event{T: 1, Kind: Leave, Elem: "x", Name: "X"})
	good := traceWith(map[string]float64{"A": 1})
	if _, _, err := Compare(bad, good); err == nil {
		t.Error("bad first trace should fail")
	}
	if _, _, err := Compare(good, bad); err == nil {
		t.Error("bad second trace should fail")
	}
}

func TestFormatComparison(t *testing.T) {
	rows, dm, err := Compare(
		traceWith(map[string]float64{"A": 1}),
		traceWith(map[string]float64{"A": 2, "B": 1}),
	)
	if err != nil {
		t.Fatal(err)
	}
	out := FormatComparison(rows, dm)
	for _, want := range []string{"makespan delta: +2", "A", "B", "new"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted comparison missing %q:\n%s", want, out)
		}
	}
}
