package trace

import (
	"strings"
	"testing"
	"time"

	"prophet/internal/obs"
)

func spanTreeFixture() obs.TraceTree {
	t0 := time.Unix(100, 0)
	return obs.TraceTree{
		TraceID: "abcd1234",
		Spans:   4,
		Root: &obs.SpanNode{
			Name: "request", Start: t0, Seconds: 1.0,
			Attrs: map[string]string{"route": "estimate"},
			Children: []*obs.SpanNode{
				{Name: "compile", Start: t0.Add(100 * time.Millisecond), Seconds: 0.2},
				{
					Name: "simulate", Start: t0.Add(300 * time.Millisecond), Seconds: 0.6,
					Children: []*obs.SpanNode{
						{Name: "sim", Start: t0.Add(350 * time.Millisecond), Seconds: 0.5,
							Attrs: map[string]string{"events": "7"}},
					},
				},
			},
		},
	}
}

func TestFromSpanTree(t *testing.T) {
	tr := FromSpanTree(spanTreeFixture())
	if tr.Model != "request" {
		t.Fatalf("model = %q", tr.Model)
	}
	if id, _ := tr.GetMeta("trace_id"); id != "abcd1234" {
		t.Fatalf("trace_id meta = %q", id)
	}
	// 4 spans → 4 enter + 4 leave.
	if len(tr.Events) != 8 {
		t.Fatalf("events = %d, want 8", len(tr.Events))
	}
	// Emission order is non-decreasing in T, root enters at 0.
	last := -1.0
	for _, ev := range tr.Events {
		if ev.T < last {
			t.Fatalf("events out of order at %v", ev)
		}
		last = ev.T
	}
	if tr.Events[0].Kind != Enter || tr.Events[0].Name != "request" || tr.Events[0].T != 0 {
		t.Fatalf("first event = %+v", tr.Events[0])
	}
	// Each span has its own lane, so sibling overlap cannot collide.
	lanes := map[int]string{}
	for _, ev := range tr.Events {
		if ev.Kind != Enter {
			continue
		}
		if prev, ok := lanes[ev.TID]; ok {
			t.Fatalf("lane %d reused by %q after %q", ev.TID, ev.Name, prev)
		}
		lanes[ev.TID] = ev.Name
	}
	// The whole request makespan survives the conversion.
	if got := tr.Makespan(); got != 1.0 {
		t.Fatalf("makespan = %g, want 1", got)
	}
	// And the converted trace summarizes + exports like any other.
	sum, err := Summarize(tr)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Elements["sim"].Total != 0.5 {
		t.Fatalf("sim total = %g", sum.Elements["sim"].Total)
	}
	var b strings.Builder
	if err := WriteChrome(&b, tr); err != nil {
		t.Fatalf("chrome export: %v", err)
	}
	for _, want := range []string{`"request"`, `"sim"`, `events=7`} {
		if !strings.Contains(b.String(), want) {
			t.Fatalf("chrome export missing %s:\n%s", want, b.String())
		}
	}
}

func TestFromSpanTreeEmpty(t *testing.T) {
	tr := FromSpanTree(obs.TraceTree{})
	if len(tr.Events) != 0 {
		t.Fatalf("events = %d, want 0", len(tr.Events))
	}
	if _, err := Summarize(tr); err != nil {
		t.Fatalf("empty span tree does not summarize: %v", err)
	}
}
