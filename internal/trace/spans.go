package trace

import (
	"sort"
	"strconv"
	"strings"

	"prophet/internal/obs"
)

// FromSpanTree converts a request span tree (as exported by obs.Trace.Tree
// and served by prophetd's GET /v1/traces/{id}) into a Trace, so the same
// tooling that renders simulation runs — traceview's Gantt, summary and
// Chrome export — can render a production request.
//
// Each span becomes one Enter/Leave pair on its own thread lane (PID 0,
// TID = preorder index), which keeps overlapping sibling spans — parallel
// runner jobs — from colliding on a single lane. Timestamps are seconds
// relative to the root span's start, so the root enters at t=0.
func FromSpanTree(tt obs.TraceTree) *Trace {
	tr := &Trace{Model: "trace"}
	if tt.Root != nil {
		tr.Model = tt.Root.Name
	}
	if tt.TraceID != "" {
		tr.SetMeta("trace_id", tt.TraceID)
	}
	tr.SetMeta("spans", strconv.Itoa(tt.Spans))
	if tt.DroppedSpans > 0 {
		tr.SetMeta("dropped_spans", strconv.Itoa(tt.DroppedSpans))
	}
	if tt.Root == nil {
		return tr
	}

	var events []Event
	tid := 0
	var walk func(n *obs.SpanNode, t0 float64)
	walk = func(n *obs.SpanNode, t0 float64) {
		lane := tid
		tid++
		events = append(events,
			Event{T: t0, PID: 0, TID: lane, Kind: Enter, Elem: attrString(n), Name: n.Name},
			Event{T: t0 + n.Seconds, PID: 0, TID: lane, Kind: Leave, Elem: attrString(n), Name: n.Name},
		)
		for _, c := range n.Children {
			walk(c, c.Start.Sub(tt.Root.Start).Seconds())
		}
	}
	walk(tt.Root, 0)

	// The trace format wants emission order to be non-decreasing in T.
	// SliceStable keeps each span's Enter ahead of its zero-duration Leave.
	sort.SliceStable(events, func(i, j int) bool { return events[i].T < events[j].T })
	tr.Events = events
	return tr
}

// attrString renders a span's attributes as "k=v" pairs in key order, the
// form Chrome export surfaces as the event's args.
func attrString(n *obs.SpanNode) string {
	if len(n.Attrs) == 0 {
		return ""
	}
	keys := make([]string, 0, len(n.Attrs))
	for k := range n.Attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + n.Attrs[k]
	}
	return strings.Join(parts, " ")
}
