package trace

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
)

// chromeEvent is one record of the Chrome trace-event format ("JSON Array
// Format"): https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
// Complete events ("ph":"X") carry a start timestamp and a duration in
// microseconds; pid/tid map directly onto the model's process/thread ids.
type chromeEvent struct {
	Name  string            `json:"name"`
	Cat   string            `json:"cat"`
	Phase string            `json:"ph"`
	TS    float64           `json:"ts"`
	Dur   float64           `json:"dur,omitempty"`
	PID   int               `json:"pid"`
	TID   int               `json:"tid"`
	Args  map[string]string `json:"args,omitempty"`
}

// WriteChrome renders the trace in the Chrome trace-event JSON format so
// runs can be inspected interactively in chrome://tracing or Perfetto —
// a modern stand-in for Teuta's Animator/Charts. Simulated time units are
// exported as seconds (1 unit = 1e6 us).
func WriteChrome(w io.Writer, tr *Trace) error {
	type key struct{ pid, tid int }
	open := map[key][]Event{}
	var events []chromeEvent

	meta := map[string]string{"model": tr.Model}
	for _, m := range tr.Meta {
		meta[m.Key] = m.Value
	}

	for _, ev := range tr.Events {
		k := key{ev.PID, ev.TID}
		switch ev.Kind {
		case Enter:
			open[k] = append(open[k], ev)
		case Leave:
			st := open[k]
			if len(st) == 0 {
				return fmt.Errorf("trace: chrome export: leave %q without enter", ev.Name)
			}
			top := st[len(st)-1]
			open[k] = st[:len(st)-1]
			events = append(events, chromeEvent{
				Name:  top.Name,
				Cat:   "element",
				Phase: "X",
				TS:    top.T * 1e6,
				Dur:   (ev.T - top.T) * 1e6,
				PID:   ev.PID,
				TID:   ev.TID,
				Args:  map[string]string{"element": top.Elem},
			})
		case Send, Recv, Mark:
			events = append(events, chromeEvent{
				Name:  ev.Name,
				Cat:   string(ev.Kind),
				Phase: "i",
				TS:    ev.T * 1e6,
				PID:   ev.PID,
				TID:   ev.TID,
				Args:  map[string]string{"element": ev.Elem},
			})
		}
	}
	for k, st := range open {
		if len(st) > 0 {
			return fmt.Errorf("trace: chrome export: %d unclosed element(s) on pid %d tid %d",
				len(st), k.pid, k.tid)
		}
	}

	doc := struct {
		TraceEvents []chromeEvent     `json:"traceEvents"`
		Meta        map[string]string `json:"otherData"`
	}{TraceEvents: events, Meta: meta}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}

// SaveChrome writes the Chrome trace JSON to a file.
func SaveChrome(path string, tr *Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	if err := WriteChrome(f, tr); err != nil {
		return err
	}
	return f.Close()
}

// WriteCSV exports the per-element summary as CSV (element, count, total,
// mean, min, max) for spreadsheet analysis, rows sorted by descending
// total.
func WriteCSV(w io.Writer, tr *Trace) error {
	sum, err := Summarize(tr)
	if err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"element", "count", "total", "mean", "min", "max"}); err != nil {
		return err
	}
	names := make([]string, 0, len(sum.Elements))
	for n := range sum.Elements {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		a, b := sum.Elements[names[i]], sum.Elements[names[j]]
		if a.Total != b.Total {
			return a.Total > b.Total
		}
		return names[i] < names[j]
	})
	for _, n := range names {
		e := sum.Elements[n]
		rec := []string{
			n,
			strconv.Itoa(e.Count),
			strconv.FormatFloat(e.Total, 'g', -1, 64),
			strconv.FormatFloat(e.Mean(), 'g', -1, 64),
			strconv.FormatFloat(e.Min, 'g', -1, 64),
			strconv.FormatFloat(e.Max, 'g', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
