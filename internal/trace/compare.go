package trace

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// DeltaRow compares one element across two runs.
type DeltaRow struct {
	Name string
	// A and B are the element's total times in each run (0 when absent).
	A, B float64
	// Delta = B - A.
	Delta float64
	// Ratio = B / A (Inf when the element is new, 0 when it vanished and
	// 1 when unchanged).
	Ratio float64
}

// Compare summarizes two traces and reports the per-element total-time
// deltas, ordered by descending |Delta|. It supports the before/after
// modeling workflow: change a cost function or a system parameter, rerun,
// and see exactly which elements moved.
func Compare(a, b *Trace) ([]DeltaRow, float64, error) {
	sa, err := Summarize(a)
	if err != nil {
		return nil, 0, fmt.Errorf("trace: compare: first trace: %w", err)
	}
	sb, err := Summarize(b)
	if err != nil {
		return nil, 0, fmt.Errorf("trace: compare: second trace: %w", err)
	}
	names := map[string]bool{}
	for n := range sa.Elements {
		names[n] = true
	}
	for n := range sb.Elements {
		names[n] = true
	}
	var rows []DeltaRow
	for n := range names {
		row := DeltaRow{Name: n, A: sa.Elements[n].Total, B: sb.Elements[n].Total}
		row.Delta = row.B - row.A
		switch {
		case row.A == 0 && row.B == 0:
			row.Ratio = 1
		case row.A == 0:
			row.Ratio = math.Inf(1)
		default:
			row.Ratio = row.B / row.A
		}
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool {
		di, dj := math.Abs(rows[i].Delta), math.Abs(rows[j].Delta)
		if di != dj {
			return di > dj
		}
		return rows[i].Name < rows[j].Name
	})
	return rows, sb.Makespan - sa.Makespan, nil
}

// FormatComparison renders a comparison as a table.
func FormatComparison(rows []DeltaRow, makespanDelta float64) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "makespan delta: %+.6g\n", makespanDelta)
	fmt.Fprintf(&sb, "%-20s %12s %12s %12s %8s\n", "element", "before", "after", "delta", "ratio")
	for _, r := range rows {
		ratio := fmt.Sprintf("%8.3f", r.Ratio)
		if math.IsInf(r.Ratio, 1) {
			ratio = "     new"
		}
		fmt.Fprintf(&sb, "%-20s %12.6g %12.6g %+12.6g %s\n", r.Name, r.A, r.B, r.Delta, ratio)
	}
	return sb.String()
}
