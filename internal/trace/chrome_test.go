package trace

import (
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteChrome(t *testing.T) {
	tr := sampleTrace()
	var sb strings.Builder
	if err := WriteChrome(&sb, tr); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string  `json:"name"`
			Phase string  `json:"ph"`
			TS    float64 `json:"ts"`
			Dur   float64 `json:"dur"`
			PID   int     `json:"pid"`
		} `json:"traceEvents"`
		Meta map[string]string `json:"otherData"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, sb.String())
	}
	if len(doc.TraceEvents) != 3 { // A1, A2, A4 complete events
		t.Fatalf("events = %d, want 3", len(doc.TraceEvents))
	}
	if doc.Meta["model"] != "sample" || doc.Meta["processes"] != "2" {
		t.Errorf("meta wrong: %v", doc.Meta)
	}
	// A2: [1,4] on pid 1 -> ts 1e6 us, dur 3e6 us.
	found := false
	for _, ev := range doc.TraceEvents {
		if ev.Name == "A2" {
			found = true
			if ev.Phase != "X" || ev.TS != 1e6 || ev.Dur != 3e6 || ev.PID != 1 {
				t.Errorf("A2 event wrong: %+v", ev)
			}
		}
	}
	if !found {
		t.Error("A2 missing")
	}
}

func TestWriteChromeInstantEvents(t *testing.T) {
	tr := &Trace{Model: "m"}
	tr.Append(Event{T: 1, PID: 0, Kind: Send, Elem: "s", Name: "SendLeft"})
	var sb strings.Builder
	if err := WriteChrome(&sb, tr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"ph": "i"`) {
		t.Errorf("send should export as instant event:\n%s", sb.String())
	}
}

func TestWriteChromeErrors(t *testing.T) {
	bad := &Trace{}
	bad.Append(Event{T: 1, Kind: Leave, Elem: "x", Name: "X"})
	var sb strings.Builder
	if err := WriteChrome(&sb, bad); err == nil {
		t.Error("leave without enter should fail")
	}
	open := &Trace{}
	open.Append(Event{T: 1, Kind: Enter, Elem: "x", Name: "X"})
	if err := WriteChrome(&sb, open); err == nil {
		t.Error("unclosed element should fail")
	}
}

func TestWriteCSV(t *testing.T) {
	var sb strings.Builder
	if err := WriteCSV(&sb, sampleTrace()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 4 { // header + A1, A4, A2
		t.Fatalf("lines = %d:\n%s", len(lines), sb.String())
	}
	if lines[0] != "element,count,total,mean,min,max" {
		t.Errorf("header = %q", lines[0])
	}
	// Sorted by total descending: A1 (8) first.
	if !strings.HasPrefix(lines[1], "A1,1,8,") {
		t.Errorf("first row = %q", lines[1])
	}
	// Malformed traces propagate the summarize error.
	bad := &Trace{}
	bad.Append(Event{T: 1, Kind: Leave, Elem: "x", Name: "X"})
	if err := WriteCSV(&sb, bad); err == nil {
		t.Error("bad trace should fail CSV export")
	}
}

func TestSaveChrome(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.json")
	if err := SaveChrome(path, sampleTrace()); err != nil {
		t.Fatal(err)
	}
	tr2, err := Load(path)
	_ = tr2
	// Not our format; just check the file exists and is JSON.
	if err == nil {
		t.Error("chrome JSON should not parse as the native trace format")
	}
}
