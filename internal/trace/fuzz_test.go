package trace

import (
	"strings"
	"testing"
)

// FuzzRead hardens the trace reader: arbitrary input must never panic,
// and any trace it accepts must re-serialize.
func FuzzRead(f *testing.F) {
	var sb strings.Builder
	Write(&sb, sampleTrace())
	f.Add(sb.String())
	f.Add("# model: x\n1\t0\t0\tenter\te\tE\n")
	f.Add("not a trace")
	f.Add("")
	f.Add("1\t2\t3\t4\t5\t6\t7\t8")
	f.Fuzz(func(t *testing.T, src string) {
		tr, err := Read(strings.NewReader(src))
		if err != nil {
			return
		}
		var out strings.Builder
		if err := Write(&out, tr); err != nil {
			t.Fatalf("accepted trace failed to re-serialize: %v", err)
		}
		// Summarize may reject ill-paired traces, but must not panic.
		_, _ = Summarize(tr)
		_ = Gantt(tr, 40)
	})
}
