// Package trace implements the trace file (TF) of the paper's Figure 2
// architecture: "Element TF represents the trace file, which is generated
// by the Performance Estimator as a result of the performance evaluation.
// Teuta uses TF for the visualization of performance results."
//
// A trace is a time-ordered list of events recording when each performance
// modeling element started and finished executing on which process/thread.
// The package provides the on-disk format (a line-oriented text format
// that diffs and greps well), summary statistics, and an ASCII Gantt
// renderer standing in for Teuta's performance visualization components.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Kind classifies a trace event.
type Kind string

const (
	// Enter marks the start of a modeling element's execution.
	Enter Kind = "enter"
	// Leave marks its completion.
	Leave Kind = "leave"
	// Send marks a message departure (point-to-point or collective).
	Send Kind = "send"
	// Recv marks a message arrival.
	Recv Kind = "recv"
	// Mark is a free-form annotation.
	Mark Kind = "mark"
)

// Event is one trace record.
type Event struct {
	T    float64
	PID  int
	TID  int
	Kind Kind
	// Elem is the model element ID; Name its human-readable name.
	Elem string
	Name string
}

// Trace is a recorded simulation run.
type Trace struct {
	// Model is the model name the run evaluated.
	Model string
	// Meta carries run parameters (system parameters, globals) as ordered
	// key/value pairs.
	Meta []MetaEntry
	// Events in emission order (non-decreasing T).
	Events []Event
}

// MetaEntry is one trace metadata pair.
type MetaEntry struct{ Key, Value string }

// SetMeta appends or replaces a metadata entry.
func (tr *Trace) SetMeta(key, value string) {
	for i := range tr.Meta {
		if tr.Meta[i].Key == key {
			tr.Meta[i].Value = value
			return
		}
	}
	tr.Meta = append(tr.Meta, MetaEntry{key, value})
}

// GetMeta returns a metadata value.
func (tr *Trace) GetMeta(key string) (string, bool) {
	for _, m := range tr.Meta {
		if m.Key == key {
			return m.Value, true
		}
	}
	return "", false
}

// Append records an event.
func (tr *Trace) Append(ev Event) { tr.Events = append(tr.Events, ev) }

// Makespan returns the time of the last event (0 for an empty trace).
func (tr *Trace) Makespan() float64 {
	if len(tr.Events) == 0 {
		return 0
	}
	last := tr.Events[0].T
	for _, ev := range tr.Events {
		if ev.T > last {
			last = ev.T
		}
	}
	return last
}

// Write renders the trace in the text format:
//
//	# trace-version: 1
//	# model: sample
//	# meta processes: 4
//	0.000000000	0	0	enter	e2	A1
func Write(w io.Writer, tr *Trace) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "# trace-version: 1")
	fmt.Fprintf(bw, "# model: %s\n", tr.Model)
	for _, m := range tr.Meta {
		fmt.Fprintf(bw, "# meta %s: %s\n", m.Key, m.Value)
	}
	for _, ev := range tr.Events {
		fmt.Fprintf(bw, "%s\t%d\t%d\t%s\t%s\t%s\n",
			strconv.FormatFloat(ev.T, 'g', 17, 64), ev.PID, ev.TID, ev.Kind, ev.Elem, ev.Name)
	}
	return bw.Flush()
}

// Save writes the trace to a file.
func Save(path string, tr *Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	if err := Write(f, tr); err != nil {
		return err
	}
	return f.Close()
}

// Read parses a trace written by Write.
func Read(r io.Reader) (*Trace, error) {
	tr := &Trace{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			body := strings.TrimSpace(strings.TrimPrefix(line, "#"))
			switch {
			case strings.HasPrefix(body, "model:"):
				tr.Model = strings.TrimSpace(strings.TrimPrefix(body, "model:"))
			case strings.HasPrefix(body, "meta "):
				kv := strings.SplitN(strings.TrimPrefix(body, "meta "), ":", 2)
				if len(kv) == 2 {
					tr.SetMeta(strings.TrimSpace(kv[0]), strings.TrimSpace(kv[1]))
				}
			}
			continue
		}
		fields := strings.Split(line, "\t")
		if len(fields) != 6 {
			return nil, fmt.Errorf("trace: line %d: want 6 fields, got %d", lineNo, len(fields))
		}
		t, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad time %q", lineNo, fields[0])
		}
		pid, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad pid %q", lineNo, fields[1])
		}
		tid, err := strconv.Atoi(fields[2])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad tid %q", lineNo, fields[2])
		}
		tr.Append(Event{T: t, PID: pid, TID: tid, Kind: Kind(fields[3]), Elem: fields[4], Name: fields[5]})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	return tr, nil
}

// Load reads a trace file from disk.
func Load(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	tr, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("trace: %s: %w", path, err)
	}
	return tr, nil
}

// ElemStat summarizes one modeling element's executions.
type ElemStat struct {
	Name  string
	Count int
	Total float64
	Min   float64
	Max   float64
}

// Mean returns the average execution time.
func (s ElemStat) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Total / float64(s.Count)
}

// Summary aggregates a trace.
type Summary struct {
	Makespan float64
	// Elements maps element name to its statistics.
	Elements map[string]ElemStat
	// BusyByPID maps process id to total busy time (union of intervals in
	// which at least one element was executing on that process).
	BusyByPID map[int]float64
	// Processes is the number of distinct PIDs seen.
	Processes int
}

// Summarize computes per-element and per-process statistics by matching
// enter/leave pairs per (pid, tid) in LIFO order (elements nest).
//
// A nil or zero-event trace yields an empty summary (zero makespan, no
// elements) rather than an error, so degenerate runs report cleanly.
func Summarize(tr *Trace) (*Summary, error) {
	if tr == nil || len(tr.Events) == 0 {
		return &Summary{
			Elements:  map[string]ElemStat{},
			BusyByPID: map[int]float64{},
		}, nil
	}
	type key struct{ pid, tid int }
	stacks := map[key][]Event{}
	depth := map[int]int{}
	busyStart := map[int]float64{}
	sum := &Summary{
		Makespan:  tr.Makespan(),
		Elements:  map[string]ElemStat{},
		BusyByPID: map[int]float64{},
	}
	pids := map[int]bool{}
	for _, ev := range tr.Events {
		pids[ev.PID] = true
		switch ev.Kind {
		case Enter:
			k := key{ev.PID, ev.TID}
			stacks[k] = append(stacks[k], ev)
			if depth[ev.PID] == 0 {
				busyStart[ev.PID] = ev.T
			}
			depth[ev.PID]++
		case Leave:
			k := key{ev.PID, ev.TID}
			st := stacks[k]
			if len(st) == 0 {
				return nil, fmt.Errorf("trace: leave %q at t=%g on pid %d tid %d without matching enter",
					ev.Name, ev.T, ev.PID, ev.TID)
			}
			// Pair with the innermost enter of the same element. Fork
			// branches run concurrently on one (pid, tid) lane, so their
			// enters/leaves may interleave; for properly nested traces
			// the innermost match is simply the top of the stack.
			match := -1
			for j := len(st) - 1; j >= 0; j-- {
				if st[j].Elem == ev.Elem {
					match = j
					break
				}
			}
			if match < 0 {
				return nil, fmt.Errorf("trace: mismatched enter/leave: %q vs %q", st[len(st)-1].Name, ev.Name)
			}
			top := st[match]
			stacks[k] = append(st[:match], st[match+1:]...)
			dt := ev.T - top.T
			s := sum.Elements[ev.Name]
			if s.Count == 0 {
				s.Name = ev.Name
				s.Min = dt
				s.Max = dt
			}
			s.Count++
			s.Total += dt
			if dt < s.Min {
				s.Min = dt
			}
			if dt > s.Max {
				s.Max = dt
			}
			sum.Elements[ev.Name] = s
			depth[ev.PID]--
			if depth[ev.PID] == 0 {
				sum.BusyByPID[ev.PID] += ev.T - busyStart[ev.PID]
			}
		}
	}
	for k, st := range stacks {
		if len(st) > 0 {
			return nil, fmt.Errorf("trace: %d unclosed element(s) on pid %d tid %d (first: %q)",
				len(st), k.pid, k.tid, st[0].Name)
		}
	}
	sum.Processes = len(pids)
	return sum, nil
}

// Report renders a summary as a table, element rows sorted by descending
// total time.
func (s *Summary) Report() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "makespan: %.6g\n", s.Makespan)
	fmt.Fprintf(&sb, "processes: %d\n", s.Processes)
	var names []string
	for n := range s.Elements {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		a, b := s.Elements[names[i]], s.Elements[names[j]]
		if a.Total != b.Total {
			return a.Total > b.Total
		}
		return names[i] < names[j]
	})
	fmt.Fprintf(&sb, "%-20s %8s %12s %12s %12s %12s\n", "element", "count", "total", "mean", "min", "max")
	for _, n := range names {
		e := s.Elements[n]
		fmt.Fprintf(&sb, "%-20s %8d %12.6g %12.6g %12.6g %12.6g\n",
			n, e.Count, e.Total, e.Mean(), e.Min, e.Max)
	}
	var pidList []int
	for pid := range s.BusyByPID {
		pidList = append(pidList, pid)
	}
	sort.Ints(pidList)
	for _, pid := range pidList {
		busy := s.BusyByPID[pid]
		util := 0.0
		if s.Makespan > 0 {
			util = busy / s.Makespan
		}
		fmt.Fprintf(&sb, "pid %3d: busy %.6g (%.1f%%)\n", pid, busy, util*100)
	}
	return sb.String()
}
