package trace

import (
	"fmt"
	"sort"
	"strings"
)

// Gantt renders the trace as an ASCII timeline, one lane per process: the
// textual stand-in for Teuta's performance visualization (Animator/Charts
// in the paper's Figure 2). Each lane shows which top-level element was
// executing in each of width time buckets; '.' marks idle time. Elements
// are keyed by the first letter of their name, with a legend below.
func Gantt(tr *Trace, width int) string {
	if width < 10 {
		width = 10
	}
	makespan := tr.Makespan()
	if makespan == 0 || len(tr.Events) == 0 {
		return "(empty trace)\n"
	}

	type interval struct {
		from, to float64
		name     string
	}
	type key struct{ pid, tid int }
	open := map[key][]Event{}
	intervalsByPID := map[int][]interval{}
	for _, ev := range tr.Events {
		k := key{ev.PID, ev.TID}
		switch ev.Kind {
		case Enter:
			open[k] = append(open[k], ev)
		case Leave:
			st := open[k]
			if len(st) == 0 {
				continue
			}
			top := st[len(st)-1]
			open[k] = st[:len(st)-1]
			// Only top-level intervals paint the lane (nested elements are
			// detail inside their parent).
			if len(open[k]) == 0 {
				intervalsByPID[ev.PID] = append(intervalsByPID[ev.PID],
					interval{from: top.T, to: ev.T, name: top.Name})
			}
		}
	}

	var pids []int
	for pid := range intervalsByPID {
		pids = append(pids, pid)
	}
	sort.Ints(pids)

	// Assign a stable glyph per element name.
	glyphs := map[string]byte{}
	legendOrder := []string{}
	taken := map[byte]bool{'.': true}
	assign := func(name string) byte {
		if g, ok := glyphs[name]; ok {
			return g
		}
		g := byte('#')
		// Prefer the element's own first letter, then fall back to the
		// first free candidate glyph.
		if len(name) > 0 && !taken[name[0]] {
			g = name[0]
		} else {
			const candidates = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"
			for i := 0; i < len(candidates); i++ {
				if !taken[candidates[i]] {
					g = candidates[i]
					break
				}
			}
		}
		taken[g] = true
		glyphs[name] = g
		legendOrder = append(legendOrder, name)
		return g
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "time 0 .. %.6g  (%d buckets of %.6g)\n", makespan, width, makespan/float64(width))
	for _, pid := range pids {
		lane := make([]byte, width)
		for i := range lane {
			lane[i] = '.'
		}
		for _, iv := range intervalsByPID[pid] {
			g := assign(iv.name)
			lo := int(iv.from / makespan * float64(width))
			hi := int(iv.to / makespan * float64(width))
			if hi >= width {
				hi = width - 1
			}
			if lo > hi {
				lo = hi
			}
			for i := lo; i <= hi; i++ {
				lane[i] = g
			}
		}
		fmt.Fprintf(&sb, "pid %3d |%s|\n", pid, lane)
	}
	sb.WriteString("legend: ")
	for i, name := range legendOrder {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%c=%s", glyphs[name], name)
	}
	sb.WriteString("\n")
	return sb.String()
}
