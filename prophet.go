// Package prophet is the public API of this repository: a Go
// implementation of the Performance Prophet methodology from "Automatic
// Performance Model Transformation from UML to C++" (Pllana, Benkner,
// Xhafa, Barolli — ICPP Workshops 2008).
//
// The workflow mirrors the paper's Figure 2 architecture:
//
//  1. Specify a performance model as UML activity diagrams extended with
//     the performance profile (<<action+>>, <<activity+>>, ...). Use the
//     fluent builder (NewModel) or load a model XML file (LoadModel).
//  2. Check the model against the UML well-formedness rules and the
//     profile (Prophet.Check).
//  3. Transform it automatically to its C++ representation
//     (Prophet.TransformCpp — the Figure 5 algorithm), or to DOT /
//     generated Go program code.
//  4. Evaluate it by simulation on the built-in CSIM-style engine
//     (Prophet.Estimate): the system parameters generate a machine model,
//     the integrated system model runs, and a trace file plus summary
//     statistics come back.
//
// Quickstart:
//
//	p := prophet.New()
//	m := prophet.NewModel("app")
//	m.Global("P", "double").Function("F", nil, "2*P")
//	d := m.Diagram("main")
//	d.Initial()
//	d.Action("Work").Cost("F()")
//	d.Final()
//	d.Chain("initial", "Work", "final")
//	model, err := m.Build()
//	// ...
//	cpp, err := p.TransformCpp(model)
//	est, err := p.Estimate(prophet.Request{Model: model,
//	    Globals: map[string]float64{"P": 4}})
//	fmt.Println(est.Makespan)
package prophet

import (
	"prophet/internal/builder"
	"prophet/internal/checker"
	"prophet/internal/core"
	"prophet/internal/estimator"
	"prophet/internal/machine"
	"prophet/internal/obs"
	"prophet/internal/profile"
	"prophet/internal/sim"
	"prophet/internal/trace"
	"prophet/internal/uml"
	"prophet/internal/xmi"
)

// Prophet is the modeling-and-prediction pipeline (see package core).
type Prophet = core.Prophet

// Options configure a pipeline.
type Options = core.Options

// Request describes one performance evaluation.
type Request = core.Request

// Estimate is the outcome of one evaluation.
type Estimate = core.Estimate

// SystemParams are the system parameters (SP): nodes, processors per node,
// processes, threads.
type SystemParams = machine.SystemParams

// NetParams parameterize the simulated interconnect.
type NetParams = machine.NetParams

// SweepPoint is one sample of a process-count sweep.
type SweepPoint = estimator.SweepPoint

// GlobalPoint is one sample of a global-variable sweep.
type GlobalPoint = estimator.GlobalPoint

// SensitivityPoint reports one global's makespan elasticity.
type SensitivityPoint = estimator.SensitivityPoint

// SensitivityResult carries the sensitivity points plus the requested
// variables that had to be skipped (unknown name, zero baseline).
type SensitivityResult = estimator.SensitivityResult

// MonteCarloResult summarizes repeated stochastic evaluations.
type MonteCarloResult = estimator.MonteCarloResult

// Model is a UML performance model.
type Model = uml.Model

// ModelBuilder assembles models fluently.
type ModelBuilder = builder.ModelBuilder

// CheckReport is the outcome of model checking.
type CheckReport = checker.Report

// Trace is a recorded simulation run (the TF of the paper's Figure 2).
type Trace = trace.Trace

// Metrics is a registry of named counters, gauges and histograms. Pass
// one as Request.Metrics to collect pipeline and simulation metrics.
type Metrics = obs.Registry

// Span is one timed pipeline stage (parse, check, compile, simulate, ...).
type Span = obs.Span

// SpanRecorder accumulates stage spans. Pass one as Request.Spans to
// time the pipeline stages of an evaluation.
type SpanRecorder = obs.SpanRecorder

// Telemetry is the simulation time series captured when
// Request.Telemetry is set.
type Telemetry = estimator.Telemetry

// Sample is one instant of simulation telemetry: facility utilization,
// queue lengths, mailbox depths, event-queue size, live processes.
type Sample = sim.Sample

// NewMetrics creates an empty metrics registry.
func NewMetrics() *Metrics { return obs.NewRegistry() }

// NewSpanRecorder creates an empty span recorder.
func NewSpanRecorder() *SpanRecorder { return obs.NewSpanRecorder() }

// Stereotype names of the standard performance profile.
const (
	ActionPlus   = profile.ActionPlus
	ActivityPlus = profile.ActivityPlus
	LoopPlus     = profile.LoopPlus
	MPISend      = profile.MPISend
	MPIRecv      = profile.MPIRecv
	MPIBarrier   = profile.MPIBarrier
	MPIBroadcast = profile.MPIBroadcast
	MPIReduce    = profile.MPIReduce
	OMPParallel  = profile.OMPParallel
	OMPCritical  = profile.OMPCritical
)

// New assembles a pipeline with the standard profile and defaults.
func New() *Prophet { return core.New() }

// NewWith assembles a pipeline with explicit options.
func NewWith(opts Options) *Prophet { return core.NewWith(opts) }

// NewModel starts a fluent model builder.
func NewModel(name string) *ModelBuilder { return builder.New(name) }

// LoadModel reads a model from an XML file.
func LoadModel(path string) (*Model, error) { return xmi.Load(path) }

// SaveModel writes a model to an XML file.
func SaveModel(path string, m *Model) error { return xmi.Save(path, m) }

// DefaultParams is a single-process, single-node system configuration.
func DefaultParams() SystemParams { return machine.DefaultParams() }

// DefaultNet is a generic commodity-cluster interconnect.
func DefaultNet() NetParams { return machine.DefaultNet() }

// LoadTrace reads a trace file.
func LoadTrace(path string) (*Trace, error) { return trace.Load(path) }

// Gantt renders a trace as an ASCII timeline.
func Gantt(tr *Trace, width int) string { return trace.Gantt(tr, width) }
