#!/usr/bin/env bash
# Load test for the prophetd serving layer: build prophetd and loadgen,
# start a cache-enabled server, and drive the cold / hot / concurrent-
# identical scenarios. loadgen writes BENCH_serving.json to the repo root
# and enforces the serving floors:
#
#   - hot-path throughput (-min-rps)
#   - hot-path result-cache hit rate (-min-hit-rate)
#   - hot-vs-cold p50 speedup (-min-speedup, the >=10x cache win)
#
# Tunables: PROPHETD_LOADTEST_PORT, LOADGEN_FLAGS (extra loadgen args).
set -euo pipefail

cd "$(dirname "$0")/.."

PORT="${PROPHETD_LOADTEST_PORT:-18090}"
BASE="http://127.0.0.1:${PORT}"
TMP="$(mktemp -d)"
PID=""

cleanup() {
    [ -n "$PID" ] && kill -9 "$PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT

fail() { echo "loadtest: FAIL: $*" >&2; exit 1; }

echo "loadtest: building prophetd and loadgen"
go build -o "$TMP/prophetd" ./cmd/prophetd
go build -o "$TMP/loadgen" ./cmd/loadgen

echo "loadtest: starting prophetd on $BASE"
"$TMP/prophetd" -addr "127.0.0.1:${PORT}" -log-level warn &
PID=$!

up=""
for _ in $(seq 1 100); do
    if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then up=1; break; fi
    kill -0 "$PID" 2>/dev/null || fail "prophetd exited before becoming healthy"
    sleep 0.1
done
[ -n "$up" ] || fail "/healthz never became ready"

# shellcheck disable=SC2086  # LOADGEN_FLAGS is intentionally word-split
"$TMP/loadgen" -addr "$BASE" -o BENCH_serving.json \
    -min-rps 200 -min-hit-rate 0.95 -min-speedup 10 \
    ${LOADGEN_FLAGS:-} || fail "loadgen reported floor violations"

kill -TERM "$PID"
wait "$PID" || fail "prophetd did not drain cleanly"
PID=""
echo "loadtest: PASS (report in BENCH_serving.json)"
