#!/usr/bin/env bash
# Black-box smoke test for prophetd: build the binary, serve a corpus
# model, estimate it twice (miss then cache hit), scrape /metrics, and
# check that SIGTERM drains to a clean exit 0.
#
# Needs curl; uses jq when available, falls back to grep.
set -euo pipefail

cd "$(dirname "$0")/.."

PORT="${PROPHETD_SMOKE_PORT:-18080}"
BASE="http://127.0.0.1:${PORT}"
MODEL="testdata/corpus/zero-time.xml"
BIN="$(mktemp -d)/prophetd"
PID=""

cleanup() {
    [ -n "$PID" ] && kill -9 "$PID" 2>/dev/null || true
    rm -rf "$(dirname "$BIN")"
}
trap cleanup EXIT

fail() { echo "smoke: FAIL: $*" >&2; exit 1; }

echo "smoke: building prophetd"
go build -o "$BIN" ./cmd/prophetd

echo "smoke: starting on $BASE"
"$BIN" -addr "127.0.0.1:${PORT}" &
PID=$!

# Wait for /healthz (the server should come up in well under 10s).
up=""
for _ in $(seq 1 100); do
    if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then up=1; break; fi
    kill -0 "$PID" 2>/dev/null || fail "prophetd exited before becoming healthy"
    sleep 0.1
done
[ -n "$up" ] || fail "/healthz never became ready"
echo "smoke: healthy"

# Register a model; the response carries its content address.
reg="$(curl -fsS -X POST --data-binary "@${MODEL}" "$BASE/v1/models")"
if command -v jq >/dev/null 2>&1; then
    id="$(printf '%s' "$reg" | jq -r .id)"
else
    id="$(printf '%s' "$reg" | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p')"
fi
case "$id" in
    sha256:*) echo "smoke: registered $id" ;;
    *) fail "unexpected model id in $reg" ;;
esac

# Estimate by id three times: two distinct seeds (the second must hit the
# compile cache), then a repeat of the second (which must hit the result
# cache and skip the estimator entirely). Cacheable bodies are canonical —
# no trace_id — so the trace id comes from the X-Trace-Id header.
hdrs="$(mktemp)"
estimate() {
    curl -fsS -D "$hdrs" -X POST -H 'Content-Type: application/json' \
        -d "{\"model_id\": \"${id}\", \"globals\": {\"eps\": 0.5}, \"seed\": $1}" \
        "$BASE/v1/estimate"
}
trace_id=""
for seed in 1 2; do
    est="$(estimate "$seed")"
    printf '%s' "$est" | grep -q '"makespan"' || fail "estimate (seed $seed) has no makespan: $est"
    trace_id="$(tr -d '\r' <"$hdrs" | sed -n 's/^[Xx]-[Tt]race-[Ii]d: *//p')"
done
est="$(estimate 2)"
printf '%s' "$est" | grep -q '"makespan"' || fail "repeated estimate has no makespan: $est"
cache_outcome="$(tr -d '\r' <"$hdrs" | sed -n 's/^[Xx]-[Rr]esult-[Cc]ache: *//p')"
rm -f "$hdrs"
[ -n "$trace_id" ] || fail "estimate response has no X-Trace-Id header"
[ "$cache_outcome" = "hit" ] || fail "repeated estimate was not a result-cache hit (got '${cache_outcome}')"
echo "smoke: estimates ok (trace $trace_id, repeat was a result-cache $cache_outcome)"

# The request's span tree is fetchable by id and shows the simulate stage.
tree="$(curl -fsS "$BASE/v1/traces/${trace_id}")"
printf '%s' "$tree" | grep -q '"simulate"' || fail "trace $trace_id has no simulate span: $tree"
printf '%s' "$tree" | grep -q '"request"' || fail "trace $trace_id has no request root: $tree"
echo "smoke: trace ok"

metrics="$(curl -fsS "$BASE/metrics")"
for want in estimator_cache_hits_total estimator_cache_misses_total \
    server_queue_depth server_inflight model_store_models http_requests_total; do
    printf '%s\n' "$metrics" | grep -q "^${want}" || fail "/metrics missing ${want}"
done
printf '%s\n' "$metrics" | grep -q '^estimator_cache_hits_total 1' \
    || fail "second estimate did not hit the compile cache"
printf '%s\n' "$metrics" | grep -q '^server_result_cache_total{outcome="hit"} 1' \
    || fail "repeated estimate did not count as a result-cache hit"
printf '%s\n' "$metrics" | grep -q '^server_result_cache_entries 2' \
    || fail "result cache does not hold the two distinct results"
# Prometheus exposition: typed families, per-route request histogram with
# observations, per-stage pipeline histogram, shed counters present at 0.
printf '%s\n' "$metrics" | grep -q '^# TYPE http_request_seconds histogram' \
    || fail "/metrics is not Prometheus exposition format"
count="$(printf '%s\n' "$metrics" | sed -n 's/^http_request_seconds_count{route="estimate"} //p')"
[ -n "$count" ] && [ "$count" -gt 0 ] || fail "request histogram has no observations: ${count:-missing}"
printf '%s\n' "$metrics" | grep -q '^estimate_stage_seconds_bucket{stage="simulate"' \
    || fail "/metrics missing per-stage latency histogram"
printf '%s\n' "$metrics" | grep -q '^server_rejected_total{reason=' \
    || fail "/metrics missing shed counter"
printf '%s\n' "$metrics" | grep -q '^go_goroutines' || fail "/metrics missing runtime stats"
echo "smoke: metrics ok"

# SIGTERM must drain and exit 0.
kill -TERM "$PID"
status=0
wait "$PID" || status=$?
PID=""
[ "$status" -eq 0 ] || fail "prophetd exited $status on SIGTERM, want 0"
echo "smoke: clean shutdown"
echo "smoke: PASS"
