package prophet

import (
	"math"
	"path/filepath"
	"strings"
	"testing"
)

// TestPublicAPIQuickstart exercises the documented quickstart end to end
// through the public surface only.
func TestPublicAPIQuickstart(t *testing.T) {
	p := New()

	mb := NewModel("app")
	mb.Global("P", "double").Function("F", nil, "2*P")
	d := mb.Diagram("main")
	d.Initial()
	d.Action("Work").Cost("F()")
	d.Final()
	d.Chain("initial", "Work", "final")
	model, err := mb.Build()
	if err != nil {
		t.Fatal(err)
	}

	if rep := p.Check(model); rep.HasErrors() {
		t.Fatalf("model should check clean: %v", rep.Diagnostics)
	}

	cpp, err := p.TransformCpp(model)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(cpp, "work.execute(uid, pid, tid, F());") {
		t.Errorf("C++ missing execute call:\n%s", cpp)
	}

	est, err := p.Estimate(Request{Model: model, Globals: map[string]float64{"P": 4}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Makespan-8) > 1e-12 {
		t.Errorf("makespan = %v, want 8", est.Makespan)
	}
}

func TestPublicModelFileRoundTrip(t *testing.T) {
	mb := NewModel("disk")
	d := mb.Diagram("main")
	d.Initial()
	d.Action("A").Cost("1")
	d.Final()
	d.Chain("initial", "A", "final")
	model, err := mb.Build()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "m.xml")
	if err := SaveModel(path, model); err != nil {
		t.Fatal(err)
	}
	got, err := LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name() != "disk" {
		t.Errorf("name = %q", got.Name())
	}
}

func TestPublicTraceHelpers(t *testing.T) {
	p := New()
	mb := NewModel("tr")
	d := mb.Diagram("main")
	d.Initial()
	d.Action("A").Cost("2")
	d.Final()
	d.Chain("initial", "A", "final")
	model, _ := mb.Build()
	path := filepath.Join(t.TempDir(), "run.trace")
	if _, err := p.Estimate(Request{Model: model, TracePath: path}); err != nil {
		t.Fatal(err)
	}
	tr, err := LoadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if g := Gantt(tr, 30); !strings.Contains(g, "legend") {
		t.Errorf("gantt: %s", g)
	}
}

func TestPublicConstantsAndDefaults(t *testing.T) {
	if ActionPlus != "action+" || MPISend != "mpi_send" {
		t.Error("stereotype constants wrong")
	}
	if DefaultParams().Processes != 1 {
		t.Error("default params wrong")
	}
	if DefaultNet().LatencyInter <= DefaultNet().LatencyIntra {
		t.Error("default net should have slower inter-node latency")
	}
}
