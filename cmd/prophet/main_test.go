package main

import (
	"encoding/json"
	"os"
	"testing"
)

func TestSetFlags(t *testing.T) {
	s := setFlags{}
	if err := s.Set("N=1000"); err != nil {
		t.Fatal(err)
	}
	if err := s.Set(" c = 1e-9"); err == nil {
		// "1e-9" with surrounding space parses after trim of key only;
		// value " 1e-9" fails ParseFloat? ParseFloat trims nothing.
		t.Log("leading space in value accepted")
	}
	if err := s.Set("M=10"); err != nil {
		t.Fatal(err)
	}
	if s["N"] != 1000 || s["M"] != 10 {
		t.Errorf("flags = %v", s)
	}
	if err := s.Set("no-equals"); err == nil {
		t.Error("missing '=' should fail")
	}
	if err := s.Set("x=notanumber"); err == nil {
		t.Error("non-numeric value should fail")
	}
	if s.String() == "" {
		t.Error("String should render something")
	}
}

func TestParseCounts(t *testing.T) {
	got, err := parseCounts("1, 2,4,8")
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 4, 8}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("counts = %v", got)
		}
	}
	for _, bad := range []string{"", "a", "1,0", "1,-2"} {
		if _, err := parseCounts(bad); err == nil {
			t.Errorf("parseCounts(%q) should fail", bad)
		}
	}
}

func TestRunEndToEnd(t *testing.T) {
	cases := [][]string{
		{"-sample", "sample", "-gantt", "-width", "30"},
		{"-sample", "kernel6", "-set", "N=100", "-set", "M=2", "-set", "c=1e-6"},
		{"-sample", "kernel6", "-set", "N=100", "-set", "M=2", "-set", "c=1e-6", "-sweep", "1,2,4"},
		{"-sample", "kernel6", "-set", "N=100", "-set", "M=2", "-set", "c=1e-6", "-sensitivity", "N,M,c"},
		{"-sample", "sample", "-policy", "ps"},
		{"-sample", "pipeline", "-processes", "4", "-ppn", "4", "-set", "work=0.01"},
	}
	for _, args := range cases {
		if err := run(args); err != nil {
			t.Errorf("run(%v): %v", args, err)
		}
	}
}

func TestRunWritesTraceFiles(t *testing.T) {
	dir := t.TempDir()
	tracePath := dir + "/run.trace"
	chromePath := dir + "/run.json"
	err := run([]string{"-sample", "sample", "-trace", tracePath, "-chrome", chromePath})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{tracePath, chromePath} {
		if _, err := os.Stat(p); err != nil {
			t.Errorf("expected output file %s: %v", p, err)
		}
	}
}

func TestRunMetricsFlag(t *testing.T) {
	out := t.TempDir() + "/out.json"
	err := run([]string{"-sample", "kernel6",
		"-set", "N=1000", "-set", "M=10", "-set", "c=1e-9", "-metrics", out})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Model    string  `json:"model"`
		Makespan float64 `json:"makespan"`
		Spans    []struct {
			Name    string  `json:"name"`
			Seconds float64 `json:"seconds"`
		} `json:"spans"`
		Metrics struct {
			Metrics []struct {
				Name string `json:"name"`
			} `json:"metrics"`
		} `json:"metrics"`
		Telemetry struct {
			Samples []struct {
				T                   float64            `json:"t"`
				FacilityUtilization map[string]float64 `json:"facility_utilization"`
				EventQueueLen       int                `json:"event_queue_len"`
			} `json:"samples"`
		} `json:"telemetry"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("metrics JSON: %v", err)
	}
	if doc.Makespan <= 0 {
		t.Errorf("makespan = %g, want > 0", doc.Makespan)
	}
	stages := map[string]bool{}
	for _, s := range doc.Spans {
		stages[s.Name] = true
	}
	for _, want := range []string{"parse", "check", "compile", "simulate", "summarize"} {
		if !stages[want] {
			t.Errorf("span %q missing from %s", want, data)
		}
	}
	names := map[string]bool{}
	for _, m := range doc.Metrics.Metrics {
		names[m.Name] = true
	}
	if !names["estimate_makespan_seconds"] || !names["sim_events_total"] {
		t.Errorf("expected estimator metrics in snapshot, got %v", names)
	}
	if len(doc.Telemetry.Samples) == 0 {
		t.Fatal("telemetry samples missing")
	}
	var sawUtil bool
	for _, s := range doc.Telemetry.Samples {
		if len(s.FacilityUtilization) > 0 {
			sawUtil = true
		}
	}
	if !sawUtil {
		t.Error("no sample carries facility_utilization")
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{},                                     // no model
		{"-sample", "martian"},                 // unknown sample
		{"-sample", "sample", "-policy", "x"},  // bad policy
		{"-sample", "sample", "-sweep", "a,b"}, // bad sweep
		{"-model", "/missing.xml"},             // missing file
		{"-model", "x.xml", "-sample", "sample"},
		{"-sample", "sample", "-set", "bad"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v) should fail", args)
		}
	}
}

func TestResolveModel(t *testing.T) {
	if _, err := resolveModel("", ""); err == nil {
		t.Error("neither source should fail")
	}
	if _, err := resolveModel("a.xml", "sample"); err == nil {
		t.Error("both sources should fail")
	}
	if _, err := resolveModel("", "martian"); err == nil {
		t.Error("unknown sample should fail")
	}
	for _, name := range []string{"sample", "kernel6", "kernel6-detailed", "pipeline"} {
		m, err := resolveModel("", name)
		if err != nil || m == nil {
			t.Errorf("sample %q: %v", name, err)
		}
	}
	if _, err := resolveModel("/definitely/missing.xml", ""); err == nil {
		t.Error("missing file should fail")
	}
}
