// Command prophet runs the end-to-end Performance Prophet pipeline: load a
// performance model, check it, evaluate it by simulation on the machine
// model built from the given system parameters, and report the prediction
// (optionally writing the trace file and drawing an ASCII Gantt chart).
//
// Usage:
//
//	prophet -model sample.xml -nodes 2 -ppn 4 -processes 8 -threads 1 \
//	        -set N=1000 -set M=10 -set c=1e-9 -trace run.trace -gantt
//
//	prophet -sample kernel6 -set N=1000 -set M=10 -set c=1e-9
//
//	prophet -model app.xml -sweep 1,2,4,8,16      # scalability sweep
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"net/http"
	_ "net/http/pprof"
	"os"
	"runtime/pprof"
	"strconv"
	"strings"

	"prophet/internal/core"
	"prophet/internal/estimator"
	"prophet/internal/machine"
	"prophet/internal/obs"
	"prophet/internal/samples"
	"prophet/internal/trace"
	"prophet/internal/uml"
)

// setFlags collects repeated -set K=V assignments.
type setFlags map[string]float64

func (s setFlags) String() string { return fmt.Sprint(map[string]float64(s)) }

func (s setFlags) Set(v string) error {
	kv := strings.SplitN(v, "=", 2)
	if len(kv) != 2 {
		return fmt.Errorf("-set expects K=V, got %q", v)
	}
	f, err := strconv.ParseFloat(kv[1], 64)
	if err != nil {
		return fmt.Errorf("-set %s: %v", v, err)
	}
	s[strings.TrimSpace(kv[0])] = f
	return nil
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "prophet:", err)
		os.Exit(1)
	}
}

// metricsDoc is the JSON document written by -metrics: pipeline-stage
// spans, the metrics registry snapshot, and (for plain estimates) the
// simulation telemetry time series.
type metricsDoc struct {
	Model     string               `json:"model"`
	Makespan  float64              `json:"makespan,omitempty"`
	Spans     []obs.Span           `json:"spans"`
	Metrics   obs.Snapshot         `json:"metrics"`
	Telemetry *estimator.Telemetry `json:"telemetry,omitempty"`
}

// writeSpanTree writes a trace's span tree as indented JSON, the format
// traceview -spans (and prophetd's GET /v1/traces/{id}) uses.
func writeSpanTree(path string, tt obs.TraceTree) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(tt); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeMetricsDoc(path string, doc metricsDoc) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func run(args []string) (err error) {
	fs := flag.NewFlagSet("prophet", flag.ContinueOnError)
	modelPath := fs.String("model", "", "model XML file")
	sampleName := fs.String("sample", "", "built-in model (sample|kernel6|kernel6-detailed|pipeline)")
	nodes := fs.Int("nodes", 1, "number of computational nodes")
	ppn := fs.Int("ppn", 1, "processors per node")
	processes := fs.Int("processes", 1, "number of processes")
	threads := fs.Int("threads", 1, "threads per process")
	tracePath := fs.String("trace", "", "write trace file (TF) here")
	chromePath := fs.String("chrome", "", "write Chrome trace-event JSON here (chrome://tracing)")
	gantt := fs.Bool("gantt", false, "render an ASCII Gantt chart")
	width := fs.Int("width", 72, "gantt width in buckets")
	sweep := fs.String("sweep", "", "comma-separated process counts for a scalability sweep")
	policy := fs.String("policy", "fcfs", "processor contention policy: fcfs or ps")
	backend := fs.String("backend", "lowered", "simulation backend: lowered, interp or auto")
	mode := fs.String("mode", "simulate", "evaluation mode: simulate, analytic (closed-form solver) or auto")
	sensitivity := fs.String("sensitivity", "", "comma-separated globals for a +-5% sensitivity analysis")
	montecarlo := fs.Int("montecarlo", 0, "run N seeds and report the makespan distribution (stochastic models)")
	parallel := fs.Int("parallel", 0, "worker pool size for batch evaluations: sweeps, -sensitivity, -montecarlo, -versus (0 = GOMAXPROCS)")
	versus := fs.String("versus", "", "second model XML: compare both designs across -sweep process counts")
	defNet := machine.DefaultNet()
	latIntra := fs.Float64("lat-intra", defNet.LatencyIntra, "intra-node message latency (s)")
	latInter := fs.Float64("lat-inter", defNet.LatencyInter, "inter-node message latency (s)")
	bwIntra := fs.Float64("bw-intra", defNet.BandwidthIntra, "intra-node bandwidth (bytes/s)")
	bwInter := fs.Float64("bw-inter", defNet.BandwidthInter, "inter-node bandwidth (bytes/s)")
	metricsPath := fs.String("metrics", "", "write an observability JSON dump (spans, metrics, telemetry) here")
	spansPath := fs.String("spans", "", "record the run's span tree and write it as JSON here (render with traceview -spans)")
	sampleInterval := fs.Float64("sample-interval", 0, "simulated-time spacing of telemetry samples (0 = every time change)")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile here")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	globals := setFlags{}
	fs.Var(globals, "set", "set a global model variable, K=V (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *pprofAddr != "" {
		go func() {
			// net/http/pprof registers its handlers on the default mux.
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "prophet: pprof:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "pprof listening on http://%s/debug/pprof/\n", *pprofAddr)
	}

	// When -metrics is requested, every stage of the run records spans
	// into one shared recorder and metrics into one shared registry.
	var spans *obs.SpanRecorder
	var registry *obs.Registry
	if *metricsPath != "" {
		spans = obs.NewSpanRecorder()
		registry = obs.NewRegistry()
	}

	parseDone := spans.Start("parse")
	m, err := resolveModel(*modelPath, *sampleName)
	parseDone()
	if err != nil {
		return err
	}

	// The estimate's makespan and telemetry are filled in by whichever
	// mode runs below; the deferred writer sees their final values.
	var makespan float64
	var telemetry *estimator.Telemetry
	if *metricsPath != "" {
		defer func() {
			if err != nil {
				return
			}
			err = writeMetricsDoc(*metricsPath, metricsDoc{
				Model:     m.Name(),
				Makespan:  makespan,
				Spans:     spans.Spans(),
				Metrics:   registry.Snapshot(),
				Telemetry: telemetry,
			})
			if err == nil {
				fmt.Printf("metrics: %s\n", *metricsPath)
			}
		}()
	}

	p := core.New()
	params := machine.SystemParams{
		Nodes: *nodes, ProcessorsPerNode: *ppn, Processes: *processes, Threads: *threads,
	}
	net := machine.NetParams{
		LatencyIntra: *latIntra, LatencyInter: *latInter,
		BandwidthIntra: *bwIntra, BandwidthInter: *bwInter,
	}
	req := core.Request{Model: m, Params: params, Globals: globals, TracePath: *tracePath, Net: &net, Parallel: *parallel}
	if *metricsPath != "" {
		req.Telemetry = true
		req.SampleInterval = *sampleInterval
		req.Spans = spans
		req.Metrics = registry
	}
	switch *policy {
	case "fcfs":
	case "ps":
		req.Policy = machine.PolicyPS
	default:
		return fmt.Errorf("unknown policy %q (fcfs or ps)", *policy)
	}
	if req.Backend, err = estimator.ParseBackend(*backend); err != nil {
		return err
	}
	if req.Mode, err = estimator.ParseMode(*mode); err != nil {
		return err
	}

	// -spans records the same hierarchical trace a prophetd request gets:
	// the root span rides the request context, every pipeline stage (and
	// each batch job) attaches its child, and the tree is written at exit.
	if *spansPath != "" {
		tr, root := obs.NewTrace("prophet")
		root.Annotate("model", m.Name())
		req.Context = obs.ContextWithSpan(context.Background(), root)
		defer func() {
			if err != nil {
				return
			}
			root.End()
			err = writeSpanTree(*spansPath, tr.Tree())
			if err == nil {
				fmt.Printf("spans: %s\n", *spansPath)
			}
		}()
	}

	if *versus != "" {
		other, err := core.New().LoadModel(*versus)
		if err != nil {
			return err
		}
		counts := []int{1, 2, 4, 8, 16, 32}
		if *sweep != "" {
			if counts, err = parseCounts(*sweep); err != nil {
				return err
			}
		}
		cmp, err := estimator.New().CompareModels(m, other, estimator.Request{
			Params: params, Globals: globals, Net: &net, Policy: req.Policy, Parallel: *parallel,
			Context: req.Context,
		}, counts)
		if err != nil {
			return err
		}
		fmt.Printf("A = %s, B = %s\n", cmp.NameA, cmp.NameB)
		fmt.Printf("%10s %14s %14s %8s\n", "processes", "makespan A", "makespan B", "winner")
		for _, pt := range cmp.Points {
			fmt.Printf("%10d %14.6g %14.6g %8s\n", pt.Processes, pt.MakespanA, pt.MakespanB, pt.Winner)
		}
		if len(cmp.Crossovers) > 0 {
			fmt.Printf("winner flips at process count(s): %v\n", cmp.Crossovers)
		}
		return nil
	}

	if *montecarlo > 0 {
		res, err := p.MonteCarlo(req, *montecarlo)
		if err != nil {
			return err
		}
		fmt.Printf("monte carlo over %d seed(s):\n", res.Runs)
		fmt.Printf("  mean makespan: %.6g\n", res.Mean)
		fmt.Printf("  std deviation: %.6g\n", res.Std)
		fmt.Printf("  min / max:     %.6g / %.6g\n", res.Min, res.Max)
		return nil
	}

	if *sensitivity != "" {
		names := strings.Split(*sensitivity, ",")
		for i := range names {
			names[i] = strings.TrimSpace(names[i])
		}
		res, err := p.Sensitivity(req, names, 0.05)
		if err != nil {
			return err
		}
		fmt.Printf("%-12s %14s %14s %12s\n", "variable", "base", "makespan", "elasticity")
		for _, pt := range res.Points {
			fmt.Printf("%-12s %14.6g %14.6g %12.3f\n", pt.Variable, pt.Base, pt.BaseMakespan, pt.Elasticity)
		}
		for _, sk := range res.Skipped {
			fmt.Printf("skipped: %s\n", sk)
		}
		return nil
	}

	if *sweep != "" {
		counts, err := parseCounts(*sweep)
		if err != nil {
			return err
		}
		pts, err := p.SweepProcesses(req, counts)
		if err != nil {
			return err
		}
		fmt.Printf("%10s %8s %14s %10s %10s\n", "processes", "nodes", "makespan", "speedup", "eff")
		for _, pt := range pts {
			fmt.Printf("%10d %8d %14.6g %10.3f %10.3f\n",
				pt.Processes, pt.Nodes, pt.Makespan, pt.Speedup, pt.Efficiency)
		}
		return nil
	}

	est, err := p.Estimate(req)
	if err != nil {
		return err
	}
	makespan = est.Makespan
	telemetry = est.Telemetry
	fmt.Printf("model:       %s\n", m.Name())
	fmt.Printf("system:      %d node(s) x %d processor(s), %d process(es), %d thread(s)\n",
		params.Nodes, params.ProcessorsPerNode, params.Processes, params.Threads)
	fmt.Printf("predicted execution time: %.6g\n", est.Makespan)
	if est.Analytic {
		// The closed-form solver produced the answer: there is no trace,
		// summary, or utilization to report, but the variance is exact.
		fmt.Printf("mode:        analytic (closed-form solver, no simulation run)\n")
		if est.Variance > 0 {
			fmt.Printf("makespan std deviation: %.6g\n", math.Sqrt(est.Variance))
		}
		return nil
	}
	fmt.Println()
	fmt.Print(est.Summary.Report())
	bd := estimator.BreakdownOf(m, est.Summary)
	if bd.Compute+bd.Communication > 0 {
		fmt.Printf("compute: %.6g, communication: %.6g (%.1f%%)\n",
			bd.Compute, bd.Communication, bd.CommunicationFraction()*100)
	}
	for n, u := range est.CPUUtilization {
		fmt.Printf("node %d cpu utilization: %.1f%%\n", n, u*100)
	}
	if *tracePath != "" {
		fmt.Printf("trace file: %s (%d events)\n", *tracePath, len(est.Trace.Events))
	}
	if *chromePath != "" {
		if err := trace.SaveChrome(*chromePath, est.Trace); err != nil {
			return err
		}
		fmt.Printf("chrome trace: %s\n", *chromePath)
	}
	if *gantt {
		fmt.Println()
		fmt.Print(trace.Gantt(est.Trace, *width))
	}
	return nil
}

func resolveModel(path, sample string) (*uml.Model, error) {
	switch {
	case path != "" && sample != "":
		return nil, fmt.Errorf("-model and -sample are mutually exclusive")
	case path != "":
		return core.New().LoadModel(path)
	case sample == "sample":
		return samples.Sample(), nil
	case sample == "kernel6":
		return samples.Kernel6(), nil
	case sample == "kernel6-detailed":
		return samples.Kernel6Detailed(), nil
	case sample == "pipeline":
		return samples.Pipeline(4), nil
	case sample != "":
		return nil, fmt.Errorf("unknown sample %q", sample)
	}
	return nil, fmt.Errorf("need -model <file> or -sample <name>")
}

func parseCounts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad process count %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}
