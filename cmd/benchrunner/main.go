// Command benchrunner measures the batch-evaluation runtime and the sim
// engine's event hot path, and writes the results to a JSON file
// (BENCH_runner.json by default) so the performance trajectory is
// tracked across PRs: ns/op and allocs/op per benchmark, plus the
// wall-clock speedup of a 64-run Monte Carlo batch at 4 workers vs 1.
//
//	go run ./cmd/benchrunner -o BENCH_runner.json
//
// Interpreting the speedup requires the host's core count, which is
// recorded in the document as gomaxprocs: a single-core runner cannot
// show parallel speedup no matter how good the fan-out is.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"prophet/internal/builder"
	"prophet/internal/estimator"
	"prophet/internal/sim"
	"prophet/internal/uml"
)

// result is one benchmark's measurement.
type result struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
}

// doc is the BENCH_runner.json schema.
type doc struct {
	GeneratedAt string `json:"generated_at"`
	GoVersion   string `json:"go_version"`
	// GOMAXPROCS is read back after the NumCPU configuration call, so
	// the file records what the benchmarks actually ran under; NumCPU
	// records the host's core count so trajectories measured on
	// different machines stay interpretable.
	GOMAXPROCS         int      `json:"gomaxprocs"`
	NumCPU             int      `json:"num_cpu"`
	Benchmarks         []result `json:"benchmarks"`
	MonteCarloSpeedup4 float64  `json:"montecarlo_speedup_4_workers_vs_1"`
	// SpeedupLowered is the hold_loop_1000 interp ns/op divided by the
	// lowered ns/op: how much faster the flat lowered program evaluates
	// the same single-process model than the tree-walking interpreter.
	SpeedupLowered float64 `json:"speedup_lowered_vs_interp"`
	// SpeedupAnalytic is the sequential 64-run Monte Carlo batch ns/op
	// divided by one mode=analytic solve's ns/op on the same stochastic
	// query-mix model: what the closed-form fast path saves over the
	// simulation batch a mean estimate of comparable confidence needs.
	SpeedupAnalytic float64 `json:"speedup_analytic_vs_montecarlo_64"`
	Note            string  `json:"note"`
}

func measure(name string, fn func(b *testing.B)) result {
	r := testing.Benchmark(fn)
	return result{
		Name:        name,
		NsPerOp:     float64(r.NsPerOp()),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		Iterations:  r.N,
	}
}

// queryMixModel is the stochastic workload shared with the estimator
// benchmarks: 200 weighted cache hits/misses per run.
func queryMixModel() (*uml.Model, error) {
	mb := builder.New("bench-query-mix")
	mb.Global("hitCost", "double").Global("missCost", "double")
	d := mb.Diagram("main")
	d.Initial()
	d.Loop("Queries", "200", "one").Var("q")
	d.Final()
	d.Chain("initial", "Queries", "final")
	one := mb.Diagram("one")
	one.Initial()
	one.Decision("cache")
	one.Action("Hit").Cost("hitCost")
	one.Action("Miss").Cost("missCost")
	one.Merge("done")
	one.Final()
	one.Flow("initial", "cache")
	one.FlowWeighted("cache", "Hit", 0.85)
	one.FlowWeighted("cache", "Miss", 0.15)
	one.Flow("Hit", "done")
	one.Flow("Miss", "done")
	one.Flow("done", "final")
	return mb.Build()
}

// holdLoopModel is the model-driven counterpart of the raw engine bench:
// one process executing a 1000-iteration loop whose body holds for one
// time unit. On the interp backend every iteration walks the tree and
// keys maps by name; on the lowered backend it executes flat ops over
// slot frames (and, single-process, skips the engine entirely).
func holdLoopModel() (*uml.Model, error) {
	mb := builder.New("bench-hold-loop")
	d := mb.Diagram("main")
	d.Initial()
	d.Loop("Holds", "1000", "one").Var("i")
	d.Final()
	d.Chain("initial", "Holds", "final")
	one := mb.Diagram("one")
	one.Initial()
	one.Action("Hold").Cost("1")
	one.Final()
	one.Chain("initial", "Hold", "final")
	return mb.Build()
}

func run(out string, minAnalyticSpeedup float64) error {
	runtime.GOMAXPROCS(runtime.NumCPU())
	m, err := queryMixModel()
	if err != nil {
		return err
	}
	hl, err := holdLoopModel()
	if err != nil {
		return err
	}
	e := estimator.New()
	globals := map[string]float64{"hitCost": 100e-6, "missCost": 10e-3}
	if _, err := e.CompileCached(m); err != nil {
		return err
	}
	hlProg, err := e.CompileCached(hl)
	if err != nil {
		return err
	}

	mc := func(workers int, backend estimator.Backend) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := e.MonteCarlo(estimator.Request{
					Model: m, Globals: globals, Parallel: workers, Backend: backend,
				}, 64); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	holdLoop := func(backend estimator.Backend) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := e.EstimateCompiledFast(hlProg, estimator.Request{
					Model: hl, Backend: backend,
				}); err != nil {
					b.Fatal(err)
				}
			}
		}
	}

	d := doc{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
		Note: "montecarlo_64 benches run one 64-seed batch per op on the " +
			"stochastic query-mix model (lowered backend unless suffixed " +
			"_interp); event_scheduling runs one raw engine with 1000 holds " +
			"per op; hold_loop_1000 evaluates the same workload as a model " +
			"on each backend. montecarlo speedup is sequential ns/op " +
			"divided by 4-worker ns/op and is bounded by gomaxprocs; " +
			"speedup_lowered_vs_interp is hold_loop interp ns/op divided " +
			"by lowered ns/op; analytic_query_mix runs one mode=analytic " +
			"closed-form solve per op on the query-mix model, and " +
			"speedup_analytic_vs_montecarlo_64 divides the sequential " +
			"64-run MC batch ns/op by it.",
	}

	d.Benchmarks = append(d.Benchmarks, measure("event_scheduling_1000_holds", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			eng := sim.New()
			eng.Spawn("p", func(p *sim.Process) {
				for j := 0; j < 1000; j++ {
					p.Hold(1)
				}
			})
			if _, err := eng.Run(); err != nil {
				b.Fatal(err)
			}
		}
	}))

	hlInterp := measure("hold_loop_1000_interp", holdLoop(estimator.BackendInterp))
	hlLowered := measure("hold_loop_1000_lowered", holdLoop(estimator.BackendLowered))
	d.Benchmarks = append(d.Benchmarks, hlInterp, hlLowered)
	if hlLowered.NsPerOp > 0 {
		d.SpeedupLowered = hlInterp.NsPerOp / hlLowered.NsPerOp
	}

	seq := measure("montecarlo_64_workers_1", mc(1, estimator.BackendLowered))
	par := measure("montecarlo_64_workers_4", mc(4, estimator.BackendLowered))
	seqInterp := measure("montecarlo_64_workers_1_interp", mc(1, estimator.BackendInterp))
	par4Interp := measure("montecarlo_64_workers_4_interp", mc(4, estimator.BackendInterp))
	d.Benchmarks = append(d.Benchmarks, seq, par, seqInterp, par4Interp)
	if par.NsPerOp > 0 {
		d.MonteCarloSpeedup4 = seq.NsPerOp / par.NsPerOp
	}

	mProg, err := e.CompileCached(m)
	if err != nil {
		return err
	}
	analytic := measure("analytic_query_mix", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := e.EstimateCompiledFast(mProg, estimator.Request{
				Model: m, Globals: globals, Mode: estimator.ModeAnalytic,
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
	d.Benchmarks = append(d.Benchmarks, analytic)
	if analytic.NsPerOp > 0 {
		d.SpeedupAnalytic = seq.NsPerOp / analytic.NsPerOp
	}

	f, err := os.Create(out)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(d); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s (gomaxprocs=%d, num_cpu=%d, 64-run Monte Carlo speedup at 4 workers: %.2fx, lowered vs interp: %.2fx, analytic vs MC-64: %.0fx)\n",
		out, d.GOMAXPROCS, d.NumCPU, d.MonteCarloSpeedup4, d.SpeedupLowered, d.SpeedupAnalytic)
	if minAnalyticSpeedup > 0 && d.SpeedupAnalytic < minAnalyticSpeedup {
		return fmt.Errorf("analytic speedup %.1fx is below the %.0fx floor", d.SpeedupAnalytic, minAnalyticSpeedup)
	}
	return nil
}

func main() {
	out := flag.String("o", "BENCH_runner.json", "output JSON path")
	minAnalytic := flag.Float64("min-analytic-speedup", 0,
		"fail unless speedup_analytic_vs_montecarlo_64 reaches this factor (0 disables)")
	flag.Parse()
	if err := run(*out, *minAnalytic); err != nil {
		fmt.Fprintln(os.Stderr, "benchrunner:", err)
		os.Exit(1)
	}
}
