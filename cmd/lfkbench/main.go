// Command lfkbench times the Livermore kernels on this machine, calibrates
// the per-operation cost of each kernel's analytic model, and compares the
// model prediction against fresh measurements — the measurement-based
// cost-function workflow of the paper's Sections 2.1 and 3 (tag `time`,
// "the estimated or the measured execution time").
//
// Usage:
//
//	lfkbench                 # calibrate + validate every kernel
//	lfkbench -kernel 6       # just kernel 6 (the paper's example)
//	lfkbench -n 400 -m 10    # validation problem size
package main

import (
	"flag"
	"fmt"
	"os"

	"prophet/internal/fit"
	"prophet/internal/lfk"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lfkbench:", err)
		os.Exit(1)
	}
}

func run() error {
	fs := flag.NewFlagSet("lfkbench", flag.ExitOnError)
	kernelID := fs.Int("kernel", 0, "kernel number (0 = all)")
	n := fs.Int("n", 400, "validation problem size N")
	m := fs.Int("m", 10, "validation repetition count M")
	fitModel := fs.Bool("fit", false, "fit a multi-term cost model and print it as a cost-function expression")
	if err := fs.Parse(os.Args[1:]); err != nil {
		return err
	}

	if *fitModel {
		return runFit(*kernelID, *n, *m)
	}

	ks := lfk.Kernels()
	if *kernelID != 0 {
		k, ok := lfk.ByID(*kernelID)
		if !ok {
			return fmt.Errorf("unknown kernel %d", *kernelID)
		}
		ks = []lfk.Kernel{k}
	}

	calSizes := []lfk.Size{{N: *n / 4, M: *m}, {N: *n / 2, M: *m}, {N: *n, M: *m / 2}}
	fmt.Printf("%-4s %-12s %14s %14s %14s %8s\n",
		"k", "name", "cost/op (s)", "measured (s)", "predicted (s)", "pred/meas")
	for _, k := range ks {
		c, _, err := lfk.Calibrate(k, calSizes)
		if err != nil {
			return fmt.Errorf("kernel %d: %v", k.ID, err)
		}
		meas := lfk.Time(k, *n, *m)
		pred := lfk.Predict(k, c, *n, *m)
		ratio := 0.0
		if meas.Seconds > 0 {
			ratio = pred / meas.Seconds
		}
		fmt.Printf("%-4d %-12s %14.3e %14.3e %14.3e %8.2f\n",
			k.ID, k.Name, c, meas.Seconds, pred, ratio)
	}
	return nil
}

// runFit measures a kernel across sizes and fits a multi-term cost model,
// printing the fitted expression ready to paste into a model's cost
// function (the internal/fit workflow).
func runFit(kernelID, n, m int) error {
	if kernelID == 0 {
		kernelID = 6
	}
	k, ok := lfk.ByID(kernelID)
	if !ok {
		return fmt.Errorf("unknown kernel %d", kernelID)
	}
	var samples []fit.Sample
	for _, f := range []float64{0.25, 0.5, 0.75, 1.0} {
		sz := int(float64(n) * f)
		if sz < 8 {
			sz = 8
		}
		meas := lfk.TimeBest(k, sz, m, 3)
		samples = append(samples, fit.Sample{
			Params: map[string]float64{"n": float64(sz), "m": float64(m)},
			Value:  meas.Seconds,
		})
	}
	model, err := fit.Fit(fit.MustTerms("m*n*n", "m*n", "1"), samples)
	if err != nil {
		return err
	}
	r2, err := model.R2(samples)
	if err != nil {
		return err
	}
	fmt.Printf("kernel %d (%s), %d samples\n", k.ID, k.Name, len(samples))
	fmt.Printf("fitted cost function: %s\n", model.CostFunction())
	fmt.Printf("R^2 over calibration samples: %.4f\n", r2)
	return nil
}
