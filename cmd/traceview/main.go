// Command traceview summarizes and visualizes trace files (TF), standing
// in for Teuta's performance visualization components (Animator / Charts
// in the paper's Figure 2).
//
// Usage:
//
//	traceview [-gantt] [-width N] <run.trace>
//	traceview -spans <spans.json>     # span tree from prophet -spans or
//	                                  # prophetd GET /v1/traces/{id}
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"prophet/internal/obs"
	"prophet/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "traceview:", err)
		os.Exit(1)
	}
}

func run() error {
	fs := flag.NewFlagSet("traceview", flag.ExitOnError)
	gantt := fs.Bool("gantt", true, "render the ASCII Gantt chart")
	width := fs.Int("width", 72, "gantt width in buckets")
	chromePath := fs.String("chrome", "", "also write Chrome trace-event JSON here")
	csvOut := fs.Bool("csv", false, "print the per-element summary as CSV instead of the table")
	comparePath := fs.String("compare", "", "second trace file: print a before/after comparison")
	spans := fs.Bool("spans", false, "input is a request span tree (prophet -spans / prophetd /v1/traces/{id}) instead of a trace file")
	if err := fs.Parse(os.Args[1:]); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: traceview [-gantt] [-width N] [-spans] <run.trace>")
	}
	var tr *trace.Trace
	var err error
	if *spans {
		tr, err = loadSpanTree(fs.Arg(0))
	} else {
		tr, err = trace.Load(fs.Arg(0))
	}
	if err != nil {
		return err
	}
	if *comparePath != "" {
		other, err := trace.Load(*comparePath)
		if err != nil {
			return err
		}
		rows, dm, err := trace.Compare(tr, other)
		if err != nil {
			return err
		}
		fmt.Print(trace.FormatComparison(rows, dm))
		return nil
	}
	if *csvOut {
		return trace.WriteCSV(os.Stdout, tr)
	}
	fmt.Printf("model: %s\n", tr.Model)
	for _, m := range tr.Meta {
		fmt.Printf("%s: %s\n", m.Key, m.Value)
	}
	fmt.Printf("events: %d\n\n", len(tr.Events))
	sum, err := trace.Summarize(tr)
	if err != nil {
		return err
	}
	fmt.Print(sum.Report())
	if *gantt {
		fmt.Println()
		fmt.Print(trace.Gantt(tr, *width))
	}
	if *chromePath != "" {
		if err := trace.SaveChrome(*chromePath, tr); err != nil {
			return err
		}
		fmt.Printf("chrome trace written to %s\n", *chromePath)
	}
	return nil
}

// loadSpanTree reads a request span tree (obs.TraceTree JSON) and
// converts it to a renderable trace via trace.FromSpanTree.
func loadSpanTree(path string) (*trace.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var tt obs.TraceTree
	if err := json.NewDecoder(f).Decode(&tt); err != nil {
		return nil, fmt.Errorf("%s: not a span tree: %v", path, err)
	}
	return trace.FromSpanTree(tt), nil
}
