// Command experiments re-runs every quantitative experiment of
// EXPERIMENTS.md and prints a fresh markdown report: kernel-6 calibration
// and prediction accuracy (EXTRA-PRED), the Jacobi strong-scaling sweep,
// the OpenMP critical-section sweep, the sensitivity analysis, and the
// structural reproduction checklist of the paper's figures.
//
//	go run ./cmd/experiments > EXPERIMENTS.fresh.md
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"runtime/pprof"
	"strings"

	"prophet/internal/builder"
	"prophet/internal/core"
	"prophet/internal/cppgen"
	"prophet/internal/estimator"
	"prophet/internal/lfk"
	"prophet/internal/machine"
	"prophet/internal/runner"
	"prophet/internal/samples"
)

// parallelism is the worker bound every batch experiment runs under
// (0 = GOMAXPROCS); set by -parallel.
var parallelism int

func main() {
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile here")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address")
	flag.IntVar(&parallelism, "parallel", 0, "worker pool size for batch experiments (0 = GOMAXPROCS)")
	flag.Parse()
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "experiments: pprof:", err)
			}
		}()
	}
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Println("# Experiment report (regenerated)")
	fmt.Println()
	if err := figureChecklist(); err != nil {
		return err
	}
	if err := kernel6Prediction(); err != nil {
		return err
	}
	if err := jacobiScaling(); err != nil {
		return err
	}
	if err := openmpSweep(); err != nil {
		return err
	}
	if err := sensitivity(); err != nil {
		return err
	}
	if err := interconnectSweep(); err != nil {
		return err
	}
	if err := monteCarlo(); err != nil {
		return err
	}
	return nil
}

// monteCarlo reruns the stochastic query-mix study of examples/stochastic
// in summary form.
func monteCarlo() error {
	fmt.Println("## Monte Carlo: 1000 queries, 85% cache hit rate")
	fmt.Println()
	mb := builder.New("query-mix")
	mb.Global("hitCost", "double").Global("missCost", "double")
	d := mb.Diagram("main")
	d.Initial()
	d.Loop("Queries", "1000", "one").Var("q")
	d.Final()
	d.Chain("initial", "Queries", "final")
	one := mb.Diagram("one")
	one.Initial()
	one.Decision("cache")
	one.Action("Hit").Cost("hitCost")
	one.Action("Miss").Cost("missCost")
	one.Merge("done")
	one.Final()
	one.Flow("initial", "cache")
	one.FlowWeighted("cache", "Hit", 0.85)
	one.FlowWeighted("cache", "Miss", 0.15)
	one.Flow("Hit", "done")
	one.Flow("Miss", "done")
	one.Flow("done", "final")
	m, err := mb.Build()
	if err != nil {
		return err
	}
	res, err := estimator.New().MonteCarlo(estimator.Request{
		Model:    m,
		Globals:  map[string]float64{"hitCost": 100e-6, "missCost": 10e-3},
		Parallel: parallelism,
	}, 200)
	if err != nil {
		return err
	}
	analytic := 1000 * (0.85*100e-6 + 0.15*10e-3)
	fmt.Printf("analytic expectation %.4f s; %d-seed Monte Carlo: mean %.4f s, std %.4f s, range [%.4f, %.4f] s\n\n",
		analytic, res.Runs, res.Mean, res.Std, res.Min, res.Max)
	return nil
}

// interconnectSweep varies the inter-node bandwidth for the Jacobi model
// at 32 processes: a what-if study over hardware the modeler does not
// own — the core use case of model-based performance analysis.
func interconnectSweep() error {
	fmt.Println("## Interconnect what-if: Jacobi at 32 processes vs inter-node bandwidth")
	fmt.Println()
	model := samples.Jacobi()
	est := estimator.New()
	pr, err := est.Compile(model)
	if err != nil {
		return err
	}
	bandwidths := []float64{100e6, 1e9, 10e9, 100e9}
	// The what-if points are independent: fan them across the worker pool
	// and print in bandwidth order.
	makespans, err := runner.Map(context.Background(), len(bandwidths),
		runner.Options{Workers: parallelism, Label: "interconnect-point"},
		func(ctx context.Context, i int) (float64, error) {
			net := machine.DefaultNet()
			net.BandwidthInter = bandwidths[i]
			e, err := est.EstimateCompiled(pr, estimator.Request{
				Params:  machine.SystemParams{Nodes: 4, ProcessorsPerNode: 8, Processes: 32, Threads: 1},
				Net:     &net,
				Globals: map[string]float64{"n": 4096, "iters": 50, "flop": 2e-9},
			})
			if err != nil {
				return 0, err
			}
			return e.Makespan, nil
		})
	if err != nil {
		return err
	}
	fmt.Println("| inter-node bandwidth | makespan (s) |")
	fmt.Println("|---:|---:|")
	for i, bw := range bandwidths {
		fmt.Printf("| %.0e B/s | %.4g |\n", bw, makespans[i])
	}
	fmt.Println()
	return nil
}

// figureChecklist re-verifies the structural reproduction of the paper's
// figures outside the test suite.
func figureChecklist() error {
	fmt.Println("## Figure reproduction checklist")
	fmt.Println()
	p := core.New()

	check := func(name string, ok bool, detail string) {
		mark := "ok"
		if !ok {
			mark = "FAILED"
		}
		fmt.Printf("* %-45s %-6s %s\n", name, mark, detail)
	}

	sample := samples.Sample()
	rep := p.Check(sample)
	check("FIG7 sample model checks clean", !rep.HasErrors(),
		fmt.Sprintf("%d diagnostics", len(rep.Diagnostics)))

	cpp, err := p.TransformCpp(sample)
	if err != nil {
		return err
	}
	wantFragments := []string{
		"double GV;", "double P;",
		"a1.execute(uid, pid, tid, FA1());",
		"if (GV > 0) {", "} else {",
		`ActionPlus sA1("SA1", 5);`,
	}
	allIn := true
	for _, w := range wantFragments {
		if !strings.Contains(cpp, w) {
			allIn = false
		}
	}
	check("FIG8 generated C++ structure", allIn,
		fmt.Sprintf("%d bytes generated", len(cpp)))
	check("FIG8 C++ structural validity", cppgen.ValidateStructure(cpp) == nil, "")

	k6cpp, err := p.TransformCpp(samples.Kernel6())
	if err != nil {
		return err
	}
	check("FIG4 kernel6 transition", strings.Contains(k6cpp, `ActionPlus kernel6("Kernel6", 1);`) &&
		strings.Contains(k6cpp, "kernel6.execute(uid, pid, tid, FK6());"), "")

	// FIG3 equivalence: collapsed vs detailed kernel 6 predictions.
	globals := map[string]float64{"N": 50, "M": 2, "c": 0.5}
	estC, err := p.Estimate(core.Request{Model: samples.Kernel6(), Globals: globals})
	if err != nil {
		return err
	}
	estD, err := p.Estimate(core.Request{Model: samples.Kernel6Detailed(), Globals: globals})
	if err != nil {
		return err
	}
	check("FIG3 collapsed == detailed model", abs(estC.Makespan-estD.Makespan) < 1e-9,
		fmt.Sprintf("both predict %.6g", estC.Makespan))
	fmt.Println()
	return nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func kernel6Prediction() error {
	fmt.Println("## EXTRA-PRED: kernel 6 predicted vs measured")
	fmt.Println()
	k6, _ := lfk.ByID(6)
	c, _, err := lfk.Calibrate(k6, []lfk.Size{{N: 400, M: 8}, {N: 600, M: 6}, {N: 800, M: 4}})
	if err != nil {
		return err
	}
	fmt.Printf("calibrated c = %.3e s/iteration\n\n", c)
	fmt.Println("| N | M | measured (s) | predicted (s) | error |")
	fmt.Println("|---:|---:|---:|---:|---:|")
	p := core.New()
	model := samples.Kernel6()
	for _, sz := range []lfk.Size{{N: 300, M: 8}, {N: 500, M: 8}, {N: 700, M: 6}, {N: 1000, M: 3}} {
		meas := lfk.TimeBest(k6, sz.N, sz.M, 3)
		est, err := p.Estimate(core.Request{
			Model:   model,
			Globals: map[string]float64{"N": float64(sz.N), "M": float64(sz.M), "c": c},
		})
		if err != nil {
			return err
		}
		fmt.Printf("| %d | %d | %.4e | %.4e | %+.1f%% |\n",
			sz.N, sz.M, meas.Seconds, est.Makespan,
			100*(est.Makespan-meas.Seconds)/meas.Seconds)
	}
	fmt.Println()
	return nil
}

func jacobiScaling() error {
	fmt.Println("## EXTRA-SIM: Jacobi strong scaling (n=4096, 50 iterations)")
	fmt.Println()
	model := samples.Jacobi()
	est := estimator.New()
	pts, err := est.SweepProcesses(estimator.Request{
		Model:    model,
		Params:   machine.SystemParams{ProcessorsPerNode: 8, Threads: 1},
		Globals:  map[string]float64{"n": 4096, "iters": 50, "flop": 2e-9},
		Parallel: parallelism,
	}, []int{1, 2, 4, 8, 16, 32, 64})
	if err != nil {
		return err
	}
	fmt.Println("| processes | nodes | makespan (s) | speedup | efficiency |")
	fmt.Println("|---:|---:|---:|---:|---:|")
	for _, pt := range pts {
		fmt.Printf("| %d | %d | %.4g | %.2f | %.2f |\n",
			pt.Processes, pt.Nodes, pt.Makespan, pt.Speedup, pt.Efficiency)
	}
	fmt.Println()
	return nil
}

func openmpSweep() error {
	fmt.Println("## EXTRA-OMP: parallel region with critical section (8-processor node)")
	fmt.Println()
	model := samples.OmpRegion()
	est := estimator.New()
	pr, err := est.Compile(model)
	if err != nil {
		return err
	}
	threadCounts := []int{1, 2, 4, 8, 16, 32}
	makespans, err := runner.Map(context.Background(), len(threadCounts),
		runner.Options{Workers: parallelism, Label: "omp-point"},
		func(ctx context.Context, i int) (float64, error) {
			e, err := est.EstimateCompiled(pr, estimator.Request{
				Params: machine.SystemParams{
					Nodes: 1, ProcessorsPerNode: 8, Processes: 1, Threads: threadCounts[i],
				},
				Globals: map[string]float64{"work": 8, "critical": 0.05},
			})
			if err != nil {
				return 0, err
			}
			return e.Makespan, nil
		})
	if err != nil {
		return err
	}
	fmt.Println("| threads | makespan (s) | speedup | efficiency |")
	fmt.Println("|---:|---:|---:|---:|")
	base := makespans[0]
	for i, threads := range threadCounts {
		sp := base / makespans[i]
		fmt.Printf("| %d | %.4g | %.2f | %.2f |\n", threads, makespans[i], sp, sp/float64(threads))
	}
	fmt.Println()
	return nil
}

func sensitivity() error {
	fmt.Println("## Sensitivity (kernel 6, N=1000 M=10 c=1e-9, ±5%)")
	fmt.Println()
	est := estimator.New()
	res, err := est.Sensitivity(estimator.Request{
		Model:    samples.Kernel6(),
		Globals:  map[string]float64{"N": 1000, "M": 10, "c": 1e-9},
		Parallel: parallelism,
	}, []string{"N", "M", "c"}, 0.05)
	if err != nil {
		return err
	}
	fmt.Println("| variable | base | elasticity |")
	fmt.Println("|---|---:|---:|")
	for _, pt := range res.Points {
		fmt.Printf("| %s | %.4g | %.3f |\n", pt.Variable, pt.Base, pt.Elasticity)
	}
	for _, sk := range res.Skipped {
		fmt.Printf("\nskipped: %s\n", sk)
	}
	fmt.Println()
	return nil
}
