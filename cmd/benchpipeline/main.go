// Command benchpipeline measures every transformation-pipeline stage
// separately — parse, canonical encode, content hash, check, traverse,
// compile, lower, C++ and Go code generation, and a short simulation —
// over synthetic models of increasing size (internal/modelgen), and
// writes the per-stage ns/op, allocs/op, and bytes/op trajectory to
// BENCH_pipeline.json:
//
//	go run ./cmd/benchpipeline -o BENCH_pipeline.json
//
// The front-end stages are what the TTC-style scalability argument is
// about (see docs/PERFORMANCE.md): the per-size document also records
// frontend_wall_ms, the single-pass cost of
// parse→check→traverse→compile→lower→codegen, which -frontend-budget-ms
// can turn into a hard gate.
//
// With -baseline pointing at a committed BENCH_pipeline.json, the tool
// compares each (size, stage) pair against the baseline and exits
// non-zero when a stage slowed down by more than -tolerance (default
// 2.0×, with a 1ms absolute floor so micro-stages don't trip on noise).
// CI runs this compare mode so front-end regressions cannot land
// silently; see the bench-pipeline job in .github/workflows/ci.yml.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"prophet/internal/checker"
	"prophet/internal/cppgen"
	"prophet/internal/gogen"
	"prophet/internal/interp"
	"prophet/internal/lower"
	"prophet/internal/modelgen"
	"prophet/internal/profile"
	"prophet/internal/traverse"
	"prophet/internal/xmi"
)

// stageResult is one pipeline stage's measurement at one model size.
type stageResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// sizeResult aggregates all stages at one generated model size.
type sizeResult struct {
	NodesTarget int             `json:"nodes_target"`
	Nodes       int             `json:"nodes"`
	Edges       int             `json:"edges"`
	Diagrams    int             `json:"diagrams"`
	XMIBytes    int             `json:"xmi_bytes"`
	GenParams   modelgen.Params `json:"gen_params"`
	Stages      []stageResult   `json:"stages"`
	// FrontendWallMs is the summed ns/op of
	// parse+check+traverse+compile+lower+codegen_cpp in milliseconds —
	// the cost of turning an XMI document into a generated performance
	// model, excluding simulation.
	FrontendWallMs float64 `json:"frontend_wall_ms"`
	// PeakRSSKb is /proc/self/status VmHWM after this size's stages.
	// The high-water mark is cumulative over the process, so it is only
	// meaningful as "the pipeline up to and including this size fits in
	// this much memory". Omitted (not 0) on systems without a readable
	// /proc — a missing measurement must not masquerade as a measured
	// zero in baseline documents.
	PeakRSSKb int64 `json:"peak_rss_kb,omitempty"`
}

// doc is the BENCH_pipeline.json schema.
type doc struct {
	GeneratedAt string       `json:"generated_at"`
	GoVersion   string       `json:"go_version"`
	GOMAXPROCS  int          `json:"gomaxprocs"`
	NumCPU      int          `json:"num_cpu"`
	Seed        int64        `json:"seed"`
	Sizes       []sizeResult `json:"sizes"`
	Note        string       `json:"note"`
}

// frontendStages are the stages whose ns/op sum to frontend_wall_ms.
var frontendStages = map[string]bool{
	"parse": true, "check": true, "traverse": true,
	"compile": true, "lower": true, "codegen_cpp": true,
}

func main() {
	out := flag.String("o", "BENCH_pipeline.json", "output JSON path")
	sizesFlag := flag.String("sizes", "1000,10000,50000,100000", "comma-separated node-count targets")
	seed := flag.Int64("seed", 42, "modelgen seed (same seed, same models)")
	baseline := flag.String("baseline", "", "committed BENCH_pipeline.json to compare against; regressions beyond -tolerance fail")
	tolerance := flag.Float64("tolerance", 2.0, "slowdown factor vs baseline that counts as a regression")
	budget := flag.Float64("frontend-budget-ms", 0, "fail if frontend_wall_ms at the largest size exceeds this (0 = no gate)")
	flag.Parse()

	if err := run(*out, *sizesFlag, *seed, *baseline, *tolerance, *budget); err != nil {
		fmt.Fprintln(os.Stderr, "benchpipeline:", err)
		os.Exit(1)
	}
}

func run(out, sizesFlag string, seed int64, baseline string, tolerance, budgetMs float64) error {
	runtime.GOMAXPROCS(runtime.NumCPU())
	sizes, err := parseSizes(sizesFlag)
	if err != nil {
		return err
	}

	d := doc{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
		Seed:        seed,
		Note: "each stage measured in isolation (runtime.GC() fences, " +
			"allocs from MemStats deltas) over deterministic modelgen " +
			"models; frontend_wall_ms sums parse+check+traverse+compile+" +
			"lower+codegen_cpp ns/op; simulate runs the lowered backend " +
			"with NoTrace; peak_rss_kb is the process VmHWM (cumulative " +
			"across sizes). Regenerate with `make bench-pipeline`.",
	}

	for _, n := range sizes {
		sr, err := measureSize(seed, n)
		if err != nil {
			return fmt.Errorf("size %d: %w", n, err)
		}
		d.Sizes = append(d.Sizes, sr)
		fmt.Printf("size %6d: %d nodes, %d edges, %d diagrams, frontend %.1f ms\n",
			n, sr.Nodes, sr.Edges, sr.Diagrams, sr.FrontendWallMs)
		for _, st := range sr.Stages {
			fmt.Printf("    %-12s %4d iters  %12.0f ns/op  %10d allocs/op  %12d B/op\n",
				st.Name, st.Iterations, st.NsPerOp, st.AllocsPerOp, st.BytesPerOp)
		}
	}

	f, err := os.Create(out)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(d); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s (gomaxprocs=%d num_cpu=%d)\n", out, d.GOMAXPROCS, d.NumCPU)

	if budgetMs > 0 && len(d.Sizes) > 0 {
		last := d.Sizes[len(d.Sizes)-1]
		if last.FrontendWallMs > budgetMs {
			return fmt.Errorf("frontend budget exceeded at %d nodes: %.1f ms > %.1f ms",
				last.NodesTarget, last.FrontendWallMs, budgetMs)
		}
	}
	if baseline != "" {
		return compareBaseline(baseline, d, tolerance)
	}
	return nil
}

func parseSizes(s string) ([]int, error) {
	var sizes []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad size %q", part)
		}
		sizes = append(sizes, n)
	}
	if len(sizes) == 0 {
		return nil, fmt.Errorf("no sizes given")
	}
	return sizes, nil
}

// measureSize generates one model and drives it through every stage.
func measureSize(seed int64, nodes int) (sizeResult, error) {
	params := modelgen.Params{Seed: seed, Nodes: nodes}
	m, err := modelgen.Generate(params)
	if err != nil {
		return sizeResult{}, err
	}
	sr := sizeResult{NodesTarget: nodes, GenParams: params}
	for _, dg := range m.Diagrams() {
		sr.Diagrams++
		sr.Nodes += len(dg.Nodes())
		sr.Edges += len(dg.Edges())
	}

	xml, err := xmi.EncodeString(m)
	if err != nil {
		return sizeResult{}, err
	}
	sr.XMIBytes = len(xml)

	reg := profile.NewRegistry()
	var prog *interp.Program
	var lowered *lower.Program

	type stageDef struct {
		name string
		fn   func() error
	}
	stages := []stageDef{
		{"parse", func() error {
			_, err := xmi.DecodeString(xml)
			return err
		}},
		{"encode", func() error {
			_, err := xmi.EncodeString(m)
			return err
		}},
		{"hash", func() error {
			if h := xmi.HashBytes([]byte(xml)); h == "" {
				return fmt.Errorf("empty hash")
			}
			return nil
		}},
		{"check", func() error {
			if rep := checker.New().Check(m); rep.HasErrors() {
				return fmt.Errorf("model fails checking")
			}
			return nil
		}},
		{"traverse", func() error {
			return traverse.Run(m, countingHandler{})
		}},
		{"compile", func() error {
			p, err := interp.Compile(m, reg)
			if err == nil {
				prog = p
			}
			return err
		}},
		{"lower", func() error {
			lowered = lower.Lower(prog)
			return nil
		}},
		{"codegen_cpp", func() error {
			_, err := cppgen.NewWith(reg, cppgen.DefaultOptions()).Generate(m)
			return err
		}},
		{"codegen_go", func() error {
			_, err := gogen.NewWith(reg, gogen.DefaultOptions()).Generate(m)
			return err
		}},
		{"simulate", func() error {
			_, err := lowered.Run(interp.Config{NoTrace: true, Seed: 1})
			return err
		}},
	}

	for _, st := range stages {
		res, err := measureStage(st.name, nodes, st.fn)
		if err != nil {
			return sizeResult{}, fmt.Errorf("stage %s: %w", st.name, err)
		}
		sr.Stages = append(sr.Stages, res)
		if frontendStages[st.name] {
			sr.FrontendWallMs += res.NsPerOp / 1e6
		}
	}
	if kb, ok := peakRSSKb(); ok {
		sr.PeakRSSKb = kb
	} else {
		warnNoProcOnce()
	}
	return sr, nil
}

// measureStage times fn with GC fences so one stage's garbage does not
// bill the next stage's clock. Iteration counts scale down with model
// size: micro-stages repeat until ~200ms of samples, whole-model stages
// at 100k nodes run a handful of times, simulate once.
func measureStage(name string, nodes int, fn func() error) (stageResult, error) {
	// Warm once (also primes lazily built state the stage depends on,
	// e.g. lower needs compile's program).
	if err := fn(); err != nil {
		return stageResult{}, err
	}
	budget := 200 * time.Millisecond
	maxIters := 200
	if nodes >= 50000 {
		maxIters = 3
	} else if nodes >= 10000 {
		maxIters = 20
	}
	if name == "simulate" && nodes >= 50000 {
		maxIters = 1
	}

	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	iters := 0
	for {
		if err := fn(); err != nil {
			return stageResult{}, err
		}
		iters++
		if iters >= maxIters || time.Since(start) >= budget {
			break
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	return stageResult{
		Name:        name,
		Iterations:  iters,
		NsPerOp:     float64(elapsed.Nanoseconds()) / float64(iters),
		AllocsPerOp: int64(after.Mallocs-before.Mallocs) / int64(iters),
		BytesPerOp:  int64(after.TotalAlloc-before.TotalAlloc) / int64(iters),
	}, nil
}

// countingHandler consumes traversal events without building anything, so
// the traverse stage measures pure navigation cost.
type countingHandler struct{}

func (countingHandler) Visit(traverse.Event) error { return nil }

// peakRSSKb reads VmHWM from /proc/self/status. The second return is
// false where the measurement is unavailable (no /proc outside Linux,
// or a masked /proc in a sandbox) so callers can omit the field rather
// than record a fake zero.
func peakRSSKb() (int64, bool) {
	f, err := os.Open("/proc/self/status")
	if err != nil {
		return 0, false
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) >= 2 {
			kb, err := strconv.ParseInt(fields[1], 10, 64)
			return kb, err == nil
		}
	}
	return 0, false
}

// warnNoProcOnce notes the missing measurement on stderr a single time,
// so a full multi-size run does not repeat itself.
var warnedNoProc bool

func warnNoProcOnce() {
	if warnedNoProc {
		return
	}
	warnedNoProc = true
	fmt.Fprintln(os.Stderr, "benchpipeline: /proc/self/status unavailable; omitting peak_rss_kb")
}

// compareBaseline fails when any (size, stage) pair slowed down by more
// than tol× against the committed document. A 1ms absolute floor keeps
// nanosecond-scale stages (hash at 1k nodes) from tripping on timer
// noise, and stages or sizes absent from the baseline are reported but
// not fatal, so adding a stage does not require regenerating history.
func compareBaseline(path string, fresh doc, tol float64) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	var base doc
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", path, err)
	}
	type key struct {
		nodes int
		stage string
	}
	baseNs := map[key]float64{}
	for _, s := range base.Sizes {
		for _, st := range s.Stages {
			baseNs[key{s.NodesTarget, st.Name}] = st.NsPerOp
		}
	}
	var regressions []string
	for _, s := range fresh.Sizes {
		for _, st := range s.Stages {
			b, ok := baseNs[key{s.NodesTarget, st.Name}]
			if !ok {
				fmt.Printf("baseline: no entry for size %d stage %s (new measurement, skipped)\n",
					s.NodesTarget, st.Name)
				continue
			}
			if st.NsPerOp > b*tol && st.NsPerOp-b > 1e6 {
				regressions = append(regressions, fmt.Sprintf(
					"size %d stage %s: %.2f ms vs baseline %.2f ms (%.1fx > %.1fx tolerance)",
					s.NodesTarget, st.Name, st.NsPerOp/1e6, b/1e6, st.NsPerOp/b, tol))
			}
		}
	}
	if len(regressions) > 0 {
		for _, r := range regressions {
			fmt.Fprintln(os.Stderr, "REGRESSION:", r)
		}
		return fmt.Errorf("%d stage regression(s) vs %s", len(regressions), path)
	}
	fmt.Printf("baseline check passed: no stage slower than %.1fx of %s\n", tol, path)
	return nil
}
