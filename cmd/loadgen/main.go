// Command loadgen drives a running prophetd through the serving-layer
// scenarios that matter at scale and reports latency/throughput, in the
// spirit of a tiny wrk with built-in assertions:
//
//	loadgen -addr http://127.0.0.1:8080 -o BENCH_serving.json
//
// Scenarios:
//
//	cold                 every request has a distinct canonical key (the
//	                     seed varies), so each one runs a full simulation
//	hot                  one key requested repeatedly after a warm-up:
//	                     every response must come from the result cache
//	concurrent-identical rounds of -concurrency simultaneous identical
//	                     requests on a fresh key: singleflight must
//	                     collapse each round to one simulation
//
// The report (written to -o as JSON) carries per-scenario request
// counts, req/s, p50/p99 latency, and X-Result-Cache outcome counts,
// plus the hot-vs-cold p50 speedup and the hot-path hit rate. The
// -min-rps, -min-hit-rate and -min-speedup floors turn the run into a
// CI gate: any floor violation exits non-zero.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"prophet/internal/builder"
	"prophet/internal/xmi"
)

// loadModelXMI builds the benchmark workload: a loop of `iters` cheap
// actions. At ~20k iterations a cold evaluation costs milliseconds —
// enough that the cache's sub-millisecond hit path is visibly faster,
// small enough that a load test stays quick.
func loadModelXMI(iters int) (string, error) {
	b := builder.New("loadgen")
	b.Function("F", nil, "0.001")
	d := b.Diagram("main")
	d.Initial()
	d.Loop("L", strconv.Itoa(iters), "body")
	d.Final()
	d.Chain("initial", "L", "final")
	body := b.Diagram("body")
	body.Initial()
	body.Action("W").Cost("F()")
	body.Final()
	body.Chain("initial", "W", "final")
	m, err := b.Build()
	if err != nil {
		return "", err
	}
	return xmi.EncodeString(m)
}

type sample struct {
	d       time.Duration
	code    int
	outcome string
}

// scenarioStats is one scenario's row in the report. Retries counts 503
// shed-and-retry round trips; they are backpressure, not failures, and
// do not enter the latency distribution.
type scenarioStats struct {
	Requests int            `json:"requests"`
	Errors   int            `json:"errors"`
	Retries  int            `json:"retries,omitempty"`
	RPS      float64        `json:"rps"`
	P50MS    float64        `json:"p50_ms"`
	P99MS    float64        `json:"p99_ms"`
	Outcomes map[string]int `json:"outcomes"`
}

// report is the BENCH_serving.json schema.
type report struct {
	GeneratedUnix int64                    `json:"generated_unix"`
	Addr          string                   `json:"addr"`
	ModelIters    int                      `json:"model_iters"`
	Concurrency   int                      `json:"concurrency"`
	Scenarios     map[string]scenarioStats `json:"scenarios"`
	HotSpeedupP50 float64                  `json:"hot_speedup_p50"`
	HotHitRate    float64                  `json:"hot_hit_rate"`
}

func percentile(ds []time.Duration, p float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}

func summarize(samples []sample, elapsed time.Duration) scenarioStats {
	st := scenarioStats{Requests: len(samples), Outcomes: map[string]int{}}
	var ok []time.Duration
	for _, s := range samples {
		if s.code != http.StatusOK {
			st.Errors++
			continue
		}
		ok = append(ok, s.d)
		if s.outcome != "" {
			st.Outcomes[s.outcome]++
		}
	}
	if elapsed > 0 {
		st.RPS = float64(len(samples)) / elapsed.Seconds()
	}
	st.P50MS = float64(percentile(ok, 0.50)) / float64(time.Millisecond)
	st.P99MS = float64(percentile(ok, 0.99)) / float64(time.Millisecond)
	return st
}

type client struct {
	base string
	http *http.Client
}

func (c *client) post(path string, body []byte) (sample, error) {
	s, _, err := c.postRetry(path, body, 0)
	return s, err
}

// postRetry issues one logical request, treating 503 (admission control
// shedding under load) as backpressure: honor Retry-After and try again,
// up to maxRetries attempts. Returns the final sample and the number of
// sheds absorbed along the way.
func (c *client) postRetry(path string, body []byte, maxRetries int) (sample, int, error) {
	retries := 0
	for {
		start := time.Now()
		resp, err := c.http.Post(c.base+path, "application/json", bytes.NewReader(body))
		if err != nil {
			return sample{}, retries, err
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable && retries < maxRetries {
			retries++
			wait := 50 * time.Millisecond
			if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && ra > 0 {
				wait = time.Duration(ra) * time.Second
			}
			time.Sleep(wait)
			continue
		}
		return sample{
			d:       time.Since(start),
			code:    resp.StatusCode,
			outcome: resp.Header.Get("X-Result-Cache"),
		}, retries, nil
	}
}

// estimateBody marshals an estimate request against the stored model.
func estimateBody(modelID string, seed int64) []byte {
	buf, _ := json.Marshal(map[string]any{"model_id": modelID, "seed": seed})
	return buf
}

// fanOut runs total requests across workers goroutines, each request's
// body chosen by its global index. 503 sheds are retried (they mean the
// load exceeds the server's admission bounds, which a load test does by
// design); the retry count is reported alongside the samples.
func fanOut(c *client, total, workers int, bodyFor func(i int) []byte) ([]sample, int, time.Duration, error) {
	samples := make([]sample, total)
	var next, retries atomic.Int64
	var firstErr atomic.Value
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= total {
					return
				}
				s, r, err := c.postRetry("/v1/estimate", bodyFor(i), 1_000)
				retries.Add(int64(r))
				if err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				samples[i] = s
			}
		}()
	}
	wg.Wait()
	if err, ok := firstErr.Load().(error); ok && err != nil {
		return nil, 0, 0, err
	}
	return samples, int(retries.Load()), time.Since(start), nil
}

func run() error {
	var (
		addr        = flag.String("addr", "http://127.0.0.1:8080", "prophetd base URL")
		out         = flag.String("o", "BENCH_serving.json", "report output path")
		iters       = flag.Int("iters", 20_000, "loop iterations in the benchmark model")
		cold        = flag.Int("cold", 30, "cold-scenario requests (each a distinct key)")
		hot         = flag.Int("hot", 300, "hot-scenario requests (one shared key)")
		rounds      = flag.Int("rounds", 10, "concurrent-identical rounds (each a fresh key)")
		concurrency = flag.Int("concurrency", 8, "concurrent workers / requests per round")
		minRPS      = flag.Float64("min-rps", 0, "fail unless hot-scenario req/s reaches this floor (0 = no floor)")
		minHitRate  = flag.Float64("min-hit-rate", 0, "fail unless the hot-scenario hit rate reaches this floor (0 = no floor)")
		minSpeedup  = flag.Float64("min-speedup", 0, "fail unless cold-p50 / hot-p50 reaches this floor (0 = no floor)")
	)
	flag.Parse()

	xml, err := loadModelXMI(*iters)
	if err != nil {
		return fmt.Errorf("build model: %w", err)
	}
	c := &client{base: *addr, http: &http.Client{Timeout: 2 * time.Minute}}

	resp, err := c.http.Post(*addr+"/v1/models", "application/xml", bytes.NewReader([]byte(xml)))
	if err != nil {
		return fmt.Errorf("register model: %w", err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("register model: status %d: %s", resp.StatusCode, raw)
	}
	var mr struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(raw, &mr); err != nil {
		return fmt.Errorf("register model: bad response %q: %v", raw, err)
	}

	rep := report{
		GeneratedUnix: time.Now().Unix(),
		Addr:          *addr,
		ModelIters:    *iters,
		Concurrency:   *concurrency,
		Scenarios:     map[string]scenarioStats{},
	}

	// Cold: every request keys differently, so every one simulates.
	samples, retries, elapsed, err := fanOut(c, *cold, *concurrency, func(i int) []byte {
		return estimateBody(mr.ID, int64(1_000+i))
	})
	if err != nil {
		return fmt.Errorf("cold scenario: %w", err)
	}
	coldStats := summarize(samples, elapsed)
	coldStats.Retries = retries
	rep.Scenarios["cold"] = coldStats

	// Hot: warm one key, then hammer it; every response must be a hit.
	warmBody := estimateBody(mr.ID, 1)
	if s, err := c.post("/v1/estimate", warmBody); err != nil || s.code != http.StatusOK {
		return fmt.Errorf("hot warm-up failed (err %v, code %d)", err, s.code)
	}
	samples, retries, elapsed, err = fanOut(c, *hot, *concurrency, func(int) []byte { return warmBody })
	if err != nil {
		return fmt.Errorf("hot scenario: %w", err)
	}
	hotStats := summarize(samples, elapsed)
	hotStats.Retries = retries
	rep.Scenarios["hot"] = hotStats

	// Concurrent-identical: each round fires `concurrency` simultaneous
	// requests for one fresh key; singleflight must collapse every round
	// to a single miss with the rest coalesced.
	var ciSamples []sample
	ciRetries := 0
	ciStart := time.Now()
	for round := 0; round < *rounds; round++ {
		body := estimateBody(mr.ID, int64(5_000+round))
		rs, r, _, err := fanOut(c, *concurrency, *concurrency, func(int) []byte { return body })
		if err != nil {
			return fmt.Errorf("concurrent-identical round %d: %w", round, err)
		}
		ciSamples = append(ciSamples, rs...)
		ciRetries += r
	}
	ciStats := summarize(ciSamples, time.Since(ciStart))
	ciStats.Retries = ciRetries
	rep.Scenarios["concurrent_identical"] = ciStats

	if hotStats.P50MS > 0 {
		rep.HotSpeedupP50 = coldStats.P50MS / hotStats.P50MS
	}
	if n := hotStats.Requests - hotStats.Errors; n > 0 {
		rep.HotHitRate = float64(hotStats.Outcomes["hit"]) / float64(n)
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("loadgen: cold p50 %.2fms p99 %.2fms | hot p50 %.3fms p99 %.3fms (%.0f req/s, hit rate %.2f) | hot speedup %.1fx\n",
		coldStats.P50MS, coldStats.P99MS, hotStats.P50MS, hotStats.P99MS, hotStats.RPS, rep.HotHitRate, rep.HotSpeedupP50)

	var violations []string
	if *minRPS > 0 && hotStats.RPS < *minRPS {
		violations = append(violations, fmt.Sprintf("hot req/s %.0f below floor %.0f", hotStats.RPS, *minRPS))
	}
	if *minHitRate > 0 && rep.HotHitRate < *minHitRate {
		violations = append(violations, fmt.Sprintf("hot hit rate %.2f below floor %.2f", rep.HotHitRate, *minHitRate))
	}
	if *minSpeedup > 0 && rep.HotSpeedupP50 < *minSpeedup {
		violations = append(violations, fmt.Sprintf("hot speedup %.1fx below floor %.1fx", rep.HotSpeedupP50, *minSpeedup))
	}
	for name, st := range rep.Scenarios {
		if st.Errors > 0 {
			violations = append(violations, fmt.Sprintf("%s scenario saw %d non-200 responses", name, st.Errors))
		}
	}
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, "loadgen: FLOOR VIOLATION:", v)
		}
		return fmt.Errorf("%d floor violation(s)", len(violations))
	}
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}
