// Command prophetd serves performance estimates over HTTP: the
// long-running, hardened front-end to the Performance Prophet pipeline.
//
//	prophetd -addr :8080
//
// Endpoints (full reference in docs/SERVING.md):
//
//	POST /v1/models    register an XMI model, returns its content address
//	POST /v1/estimate  one evaluation (inline XMI or a stored model id)
//	POST /v1/sweep     process-count or global-variable sweep
//	POST /v1/compare   two-design comparison across process counts
//	GET  /healthz      liveness (503 while draining)
//	GET  /metrics      obs text-format metrics
//
// prophetd sheds load with 503 + Retry-After when the in-flight and
// queue bounds are exceeded, enforces a per-request deadline inside the
// simulation, and drains gracefully on SIGTERM/SIGINT: /healthz flips to
// 503, new evaluations are rejected, in-flight requests complete (up to
// -drain-timeout), then the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"prophet/internal/server"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "prophetd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("prophetd", flag.ContinueOnError)
	var (
		addr         = fs.String("addr", ":8080", "listen address")
		maxInFlight  = fs.Int("max-inflight", 0, "max concurrent evaluations (0 = GOMAXPROCS)")
		maxQueue     = fs.Int("max-queue", 0, "max queued requests (0 = 2*max-inflight, -1 = none)")
		queueWait    = fs.Duration("queue-wait", 2*time.Second, "max time a request waits for an evaluation slot")
		timeout      = fs.Duration("timeout", 30*time.Second, "default per-request evaluation deadline")
		maxTimeout   = fs.Duration("max-timeout", 5*time.Minute, "upper clamp on client-requested deadlines")
		maxBody      = fs.Int64("max-body", 8<<20, "max request body bytes")
		maxModels    = fs.Int("max-models", 1024, "max models kept in the content-addressed store")
		drainTimeout = fs.Duration("drain-timeout", 10*time.Second, "max time to wait for in-flight requests on shutdown")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	srv := server.New(server.Config{
		MaxInFlight:    *maxInFlight,
		MaxQueue:       *maxQueue,
		QueueWait:      *queueWait,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		MaxBodyBytes:   *maxBody,
		MaxModels:      *maxModels,
	})
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("prophetd: listening on %s", *addr)
		errc <- hs.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	// Graceful drain: stop advertising health and shedding new work
	// first, then let http.Server.Shutdown wait for in-flight requests.
	log.Printf("prophetd: draining (waiting up to %s for in-flight requests)", *drainTimeout)
	srv.Drain()
	sctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	log.Printf("prophetd: drained, exiting")
	return nil
}
