// Command prophetd serves performance estimates over HTTP: the
// long-running, hardened front-end to the Performance Prophet pipeline.
//
//	prophetd -addr :8080
//
// Endpoints (full reference in docs/SERVING.md):
//
//	POST /v1/models        register an XMI model, returns its content address
//	POST /v1/estimate      one evaluation (inline XMI or a stored model id)
//	POST /v1/sweep         process-count or global-variable sweep
//	POST /v1/montecarlo    Monte Carlo makespan distribution
//	POST /v1/compare       two-design comparison across process counts
//	GET  /v1/traces        recent request traces, newest first
//	GET  /v1/traces/{id}   one request's span tree (?format=chrome for Perfetto)
//	GET  /healthz          liveness (503 while draining)
//	GET  /metrics          Prometheus text-format metrics
//
// Every evaluation request is traced end to end — parse, admission wait,
// check, compile (with cache outcome), simulate — and logged as one
// structured line carrying the trace ID. -debug-addr exposes net/http/pprof
// on a separate listener that is never reachable from the serving port.
//
// prophetd sheds load with 503 + Retry-After when the in-flight and
// queue bounds are exceeded, enforces a per-request deadline inside the
// simulation, and drains gracefully on SIGTERM/SIGINT: /healthz flips to
// 503, new evaluations are rejected, in-flight requests complete (up to
// -drain-timeout), then the process exits 0.
//
// Identical evaluation requests share work twice over: a bounded LRU
// result cache (-result-cache, keyed by the canonical request key) answers
// repeats without re-simulating, and in-flight duplicates coalesce onto
// one evaluation (singleflight). The X-Result-Cache response header
// reports hit, miss, inflight or bypass per request. With -workers,
// prophetd becomes a coordinator: sweeps and Monte Carlo runs are split
// into sub-ranges fanned across the worker pool and merged bit-identically
// to a single-node run. docs/SERVING.md covers both in detail.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"prophet/internal/server"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "prophetd:", err)
		os.Exit(1)
	}
}

// newLogger builds the process logger from the -log-format/-log-level
// flags. JSON is the default: one object per line, machine-parseable, the
// schema documented in docs/OBSERVABILITY.md.
func newLogger(format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lvl = slog.LevelDebug
	case "", "info":
		lvl = slog.LevelInfo
	case "warn":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown log level %q (want debug, info, warn or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch strings.ToLower(format) {
	case "", "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	}
	return nil, fmt.Errorf("unknown log format %q (want json or text)", format)
}

// debugMux builds the pprof mux served on -debug-addr. The profiling
// endpoints live on their own listener (typically bound to localhost) so
// they are never reachable through the serving port.
func debugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func run(args []string) error {
	fs := flag.NewFlagSet("prophetd", flag.ContinueOnError)
	var (
		addr         = fs.String("addr", ":8080", "listen address")
		debugAddr    = fs.String("debug-addr", "", "listen address for net/http/pprof (empty = disabled)")
		logFormat    = fs.String("log-format", "json", "log output format: json or text")
		logLevel     = fs.String("log-level", "info", "minimum log level: debug, info, warn or error")
		traceRing    = fs.Int("trace-ring", 0, "recent request traces kept for GET /v1/traces (0 = 256)")
		maxInFlight  = fs.Int("max-inflight", 0, "max concurrent evaluations (0 = GOMAXPROCS)")
		maxQueue     = fs.Int("max-queue", 0, "max queued requests (0 = 2*max-inflight, -1 = none)")
		queueWait    = fs.Duration("queue-wait", 2*time.Second, "max time a request waits for an evaluation slot")
		timeout      = fs.Duration("timeout", 30*time.Second, "default per-request evaluation deadline")
		maxTimeout   = fs.Duration("max-timeout", 5*time.Minute, "upper clamp on client-requested deadlines")
		maxBody      = fs.Int64("max-body", 8<<20, "max request body bytes")
		maxModels    = fs.Int("max-models", 1024, "max models kept in the content-addressed store")
		drainTimeout = fs.Duration("drain-timeout", 10*time.Second, "max time to wait for in-flight requests on shutdown")
		resultCache  = fs.Int("result-cache", 1024, "max entries in the evaluation result cache (0 = disabled)")
		workers      = fs.String("workers", "", "comma-separated worker base URLs to shard sweeps and Monte Carlo runs across (empty = evaluate locally)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	logger, err := newLogger(*logFormat, *logLevel)
	if err != nil {
		return err
	}

	var pool []string
	for _, w := range strings.Split(*workers, ",") {
		if w = strings.TrimSpace(w); w != "" {
			pool = append(pool, strings.TrimRight(w, "/"))
		}
	}

	srv := server.New(server.Config{
		MaxInFlight:    *maxInFlight,
		MaxQueue:       *maxQueue,
		QueueWait:      *queueWait,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		MaxBodyBytes:   *maxBody,
		MaxModels:      *maxModels,
		Logger:         logger,
		TraceRingSize:  *traceRing,
		ResultCache:    *resultCache,
		Workers:        pool,
	})
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		logger.Info("listening", "addr", *addr)
		errc <- hs.ListenAndServe()
	}()

	var ds *http.Server
	if *debugAddr != "" {
		ds = &http.Server{
			Addr:              *debugAddr,
			Handler:           debugMux(),
			ReadHeaderTimeout: 5 * time.Second,
		}
		go func() {
			logger.Info("pprof listening", "addr", *debugAddr)
			if err := ds.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("pprof listener failed", "error", err)
			}
		}()
	}

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	// Graceful drain: stop advertising health and shed new work first,
	// then let http.Server.Shutdown wait for in-flight requests.
	logger.Info("draining", "drain_timeout", drainTimeout.String())
	srv.Drain()
	sctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if ds != nil {
		_ = ds.Shutdown(sctx)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	logger.Info("drained, exiting")
	return nil
}
