// Command teuta is the model-processing front end, named after the paper's
// modeling tool: it checks performance models and generates their various
// representations (C++, Go, DOT, XML).
//
// Usage:
//
//	teuta check  [-mcf file] [-constructs file] <model.xml>  check the model
//	teuta cpp    <model.xml>                 emit the C++ representation
//	teuta standalone <model.xml>             C++ with a main(); compiles against pmp_runtime.h
//	teuta runtime                            emit pmp_runtime.h
//	teuta mcf                                emit a default Model Checking File
//	teuta go     <model.xml>                 emit generated Go program code
//	teuta dot    <model.xml>                 emit Graphviz DOT
//	teuta doc    <model.xml>                 emit markdown documentation
//	teuta xml    <model.xml>                 parse and re-emit the XML
//	teuta describe <model.xml>               print model statistics
//	teuta sample <sample|kernel6|kernel6-detailed|pipeline> emit a built-in model as XML
//	teuta rules                              list model-checking rules
package main

import (
	"fmt"
	"os"

	"prophet/internal/checker"
	"prophet/internal/core"
	"prophet/internal/cppgen"
	"prophet/internal/diff"
	"prophet/internal/profile"
	"prophet/internal/samples"
	"prophet/internal/uml"
	"prophet/internal/xmi"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "teuta:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) < 1 {
		return usageError()
	}
	cmd, rest := args[0], args[1:]
	p := core.New()
	switch cmd {
	case "check":
		return runCheck(rest)
	case "cpp":
		return transform(rest, p.TransformCpp)
	case "go":
		return transform(rest, p.TransformGo)
	case "dot":
		return transform(rest, p.TransformDot)
	case "doc":
		return transform(rest, p.TransformMarkdown)
	case "xml":
		return transform(rest, p.ModelToXML)
	case "runtime":
		fmt.Print(cppgen.RuntimeHeader())
		return nil
	case "standalone":
		return transform(rest, func(m *uml.Model) (string, error) {
			cpp, err := p.TransformCpp(m)
			if err != nil {
				return "", err
			}
			return cppgen.StandaloneProgram(cpp, "model_program"), nil
		})
	case "describe":
		return describe(rest)
	case "sample":
		return emitSample(rest)
	case "rules":
		for _, name := range checker.Rules() {
			doc, _ := checker.RuleDoc(name)
			fmt.Printf("%-22s %s\n", name, doc)
		}
		return nil
	case "mcf":
		return checker.WriteMCF(os.Stdout, checker.Config{})
	case "constructs":
		// Emit a template Constructs file (the profile-extension
		// configuration of the paper's Figure 2).
		return profile.WriteConstructs(os.Stdout, []*profile.Stereotype{
			{
				Name: "gpu_kernel",
				Base: uml.KindAction,
				Doc:  "example user-defined stereotype; edit to taste",
				Tags: []profile.TagDef{
					{Name: "blocks", Type: profile.TagExpr, Required: true},
					{Name: "time", Type: profile.TagExpr},
				},
			},
		})
	case "diff":
		if len(rest) != 2 {
			return fmt.Errorf("usage: teuta diff <old.xml> <new.xml>")
		}
		oldM, err := xmi.Load(rest[0])
		if err != nil {
			return err
		}
		newM, err := xmi.Load(rest[1])
		if err != nil {
			return err
		}
		changes := diff.Models(oldM, newM)
		fmt.Print(diff.Format(changes))
		if len(changes) > 0 {
			os.Exit(2) // diff-style exit status
		}
		return nil
	case "help", "-h", "--help":
		return usageError()
	}
	return fmt.Errorf("unknown command %q (try: teuta help)", cmd)
}

func usageError() error {
	return fmt.Errorf("usage: teuta <check|cpp|standalone|runtime|go|dot|xml|mcf|constructs|diff|describe|sample|rules> [args]")
}

func loadArg(args []string) (*uml.Model, error) {
	if len(args) != 1 {
		return nil, fmt.Errorf("expected exactly one model file argument")
	}
	return xmi.Load(args[0])
}

func runCheck(args []string) error {
	cfg := checker.Config{}
	reg := profile.NewRegistry()
	for len(args) >= 2 {
		switch args[0] {
		case "-mcf":
			var err error
			cfg, err = checker.LoadMCF(args[1])
			if err != nil {
				return err
			}
			args = args[2:]
		case "-constructs":
			if err := reg.LoadConstructs(args[1]); err != nil {
				return err
			}
			args = args[2:]
		default:
			goto parsed
		}
	}
parsed:
	m, err := loadArg(args)
	if err != nil {
		return err
	}
	rep := checker.NewWith(reg, cfg).Check(m)
	for _, d := range rep.Diagnostics {
		fmt.Println(d)
	}
	fmt.Printf("%d error(s), %d warning(s), %d info\n",
		rep.Count(checker.Error), rep.Count(checker.Warning), rep.Count(checker.Info))
	if rep.HasErrors() {
		return fmt.Errorf("model %q does not conform", m.Name())
	}
	return nil
}

func transform(args []string, f func(*uml.Model) (string, error)) error {
	m, err := loadArg(args)
	if err != nil {
		return err
	}
	out, err := f(m)
	if err != nil {
		return err
	}
	fmt.Print(out)
	return nil
}

func describe(args []string) error {
	m, err := loadArg(args)
	if err != nil {
		return err
	}
	s := m.Stats()
	fmt.Printf("model:     %s\n", m.Name())
	fmt.Printf("main:      %s\n", m.MainName())
	fmt.Printf("diagrams:  %d\n", s.Diagrams)
	fmt.Printf("nodes:     %d (%d actions)\n", s.Nodes, s.Actions)
	fmt.Printf("edges:     %d\n", s.Edges)
	fmt.Printf("variables: %d\n", s.Variables)
	fmt.Printf("functions: %d\n", s.Functions)
	for _, d := range m.Diagrams() {
		fmt.Printf("  diagram %-16s %d nodes, %d edges\n", d.Name(), len(d.Nodes()), len(d.Edges()))
	}
	return nil
}

func emitSample(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: teuta sample <sample|kernel6|kernel6-detailed|pipeline>")
	}
	var m *uml.Model
	switch args[0] {
	case "sample":
		m = samples.Sample()
	case "kernel6":
		m = samples.Kernel6()
	case "kernel6-detailed":
		m = samples.Kernel6Detailed()
	case "pipeline":
		m = samples.Pipeline(4)
	default:
		return fmt.Errorf("unknown sample %q", args[0])
	}
	s, err := xmi.EncodeString(m)
	if err != nil {
		return err
	}
	fmt.Print(s)
	return nil
}
