package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"prophet/internal/samples"
	"prophet/internal/xmi"
)

func writeSample(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "sample.xml")
	if err := xmi.Save(path, samples.Sample()); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		nil,                       // no command
		{"martian"},               // unknown command
		{"cpp"},                   // missing file
		{"cpp", "a.xml", "b.xml"}, // too many files
		{"cpp", "/missing.xml"},   // unreadable file
		{"sample"},                // missing sample name
		{"sample", "martian"},     // unknown sample
		{"diff", "only-one.xml"},  // diff arity
		{"check", "/missing.xml"}, // unreadable model
		{"check", "-mcf", "/missing-mcf.xml", "x.xml"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v) should fail", args)
		}
	}
}

func TestRunTransforms(t *testing.T) {
	path := writeSample(t)
	// These write to stdout; success is the absence of an error (output
	// content is covered by the package tests of each generator).
	for _, cmd := range []string{"cpp", "go", "dot", "doc", "xml", "standalone", "describe"} {
		if err := run([]string{cmd, path}); err != nil {
			t.Errorf("run(%s): %v", cmd, err)
		}
	}
	if err := run([]string{"check", path}); err != nil {
		t.Errorf("check: %v", err)
	}
	if err := run([]string{"rules"}); err != nil {
		t.Errorf("rules: %v", err)
	}
	if err := run([]string{"runtime"}); err != nil {
		t.Errorf("runtime: %v", err)
	}
	if err := run([]string{"mcf"}); err != nil {
		t.Errorf("mcf: %v", err)
	}
	if err := run([]string{"constructs"}); err != nil {
		t.Errorf("constructs: %v", err)
	}
	for _, s := range []string{"sample", "kernel6", "kernel6-detailed", "pipeline"} {
		if err := run([]string{"sample", s}); err != nil {
			t.Errorf("sample %s: %v", s, err)
		}
	}
}

func TestRunCheckFailsOnBrokenModel(t *testing.T) {
	// Craft a model missing initial/final nodes.
	dir := t.TempDir()
	path := filepath.Join(dir, "broken.xml")
	src := `<model name="broken"><diagram id="d1" name="main">
	  <node id="n1" kind="Action" name="A" stereotype="action+"/>
	</diagram></model>`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"check", path})
	if err == nil || !strings.Contains(err.Error(), "does not conform") {
		t.Errorf("broken model should fail checking: %v", err)
	}
}

func TestRunCheckWithMCF(t *testing.T) {
	dir := t.TempDir()
	mcf := filepath.Join(dir, "mcf.xml")
	if err := os.WriteFile(mcf, []byte(
		`<modelchecking><rule name="unannotated-actions" enabled="false"/></modelchecking>`), 0o644); err != nil {
		t.Fatal(err)
	}
	path := writeSample(t)
	if err := run([]string{"check", "-mcf", mcf, path}); err != nil {
		t.Errorf("check with MCF: %v", err)
	}
}

func TestRunCheckWithConstructs(t *testing.T) {
	dir := t.TempDir()
	constructs := filepath.Join(dir, "constructs.xml")
	if err := os.WriteFile(constructs, []byte(
		`<constructs><stereotype name="gpu_kernel" base="Action">
		   <tag name="blocks" type="Expression" required="true"/>
		 </stereotype></constructs>`), 0o644); err != nil {
		t.Fatal(err)
	}
	// A model using the custom stereotype: unknown without -constructs,
	// clean with it.
	model := filepath.Join(dir, "model.xml")
	src := `<model name="gpu" main="main"><diagram id="d1" name="main">
	  <node id="n0" kind="InitialNode"/>
	  <node id="n1" kind="Action" name="K" stereotype="gpu_kernel">
	    <tag name="blocks" value="128"/>
	  </node>
	  <node id="n2" kind="FinalNode"/>
	  <edge from="n0" to="n1"/><edge from="n1" to="n2"/>
	</diagram></model>`
	if err := os.WriteFile(model, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"check", model}); err == nil {
		t.Error("unknown stereotype without -constructs should fail")
	}
	if err := run([]string{"check", "-constructs", constructs, model}); err != nil {
		t.Errorf("check with constructs: %v", err)
	}
	if err := run([]string{"check", "-constructs", "/missing.xml", model}); err == nil {
		t.Error("missing constructs file should fail")
	}
}

func TestRunDiffIdentical(t *testing.T) {
	path := writeSample(t)
	// Identical files: exit 0 path (no os.Exit call).
	if err := run([]string{"diff", path, path}); err != nil {
		t.Errorf("diff same file: %v", err)
	}
}
