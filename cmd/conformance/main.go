// Command conformance drives the end-to-end conformance harness: every
// corpus model runs through the full pipeline (parse → check → cppgen +
// gogen → simulate → trace → summarize), each stage's output is compared
// against the golden artifacts under testdata/golden/, and the
// differential oracles (analytic agreement, parallel bit-identity, Run vs
// RunUntil, serialization round-trip) run per model.
//
// Usage:
//
//	conformance list                 # corpus entries and oracle matrix
//	conformance run  [-json report.json] [-only name,...]
//	conformance update               # regenerate golden artifacts
//	conformance diff [-only name,...]  # golden comparison only, no oracles
//	conformance gen-corpus           # rewrite testdata/corpus XML models
//
// `run` and `diff` exit non-zero when any golden artifact drifts or any
// oracle disagrees; see docs/TESTING.md for the workflow.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"prophet/internal/conformance"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "conformance:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: conformance <list|run|update|diff|gen-corpus> [flags]")
	}
	cmd, rest := args[0], args[1:]

	fs := flag.NewFlagSet("conformance "+cmd, flag.ContinueOnError)
	corpusDir := fs.String("corpus", "", "corpus directory (default <repo>/testdata/corpus)")
	goldenDir := fs.String("golden", "", "golden directory (default <repo>/testdata/golden)")
	jsonPath := fs.String("json", "", "write the JSON report to this file")
	only := fs.String("only", "", "comma-separated entry names to restrict the run to")
	quiet := fs.Bool("q", false, "suppress per-entry progress output")
	if err := fs.Parse(rest); err != nil {
		return err
	}

	opts := conformance.Options{
		CorpusDir: *corpusDir,
		GoldenDir: *goldenDir,
	}
	if *only != "" {
		for _, n := range strings.Split(*only, ",") {
			if n = strings.TrimSpace(n); n != "" {
				opts.Only = append(opts.Only, n)
			}
		}
	}
	if !*quiet {
		opts.Log = os.Stderr
	}

	switch cmd {
	case "list":
		return list(opts)
	case "run":
	case "update":
		opts.Update = true
	case "diff":
		opts.SkipOracles = true
	case "gen-corpus":
		return genCorpus(opts)
	default:
		return fmt.Errorf("unknown subcommand %q (want list, run, update, diff or gen-corpus)", cmd)
	}

	rep, err := conformance.Run(opts)
	if err != nil {
		return err
	}
	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			return err
		}
		if err := rep.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	fmt.Println(rep.Summary())
	if !rep.Passed {
		reportFailures(rep)
		return fmt.Errorf("conformance drift detected")
	}
	return nil
}

// reportFailures prints the stage-level detail of every failing entry.
func reportFailures(rep *conformance.Report) {
	for _, r := range rep.Entries {
		if r.Passed() {
			continue
		}
		if r.Error != "" {
			fmt.Printf("  %s: pipeline error: %s\n", r.Entry, r.Error)
		}
		for _, d := range r.Drifts {
			fmt.Printf("  %s\n", d)
		}
		for _, o := range r.Oracles {
			if !o.Passed {
				fmt.Printf("  %s/%s: %s\n", o.Entry, o.Oracle, o.Detail)
			}
		}
	}
	for _, name := range rep.StaleGolden {
		fmt.Printf("  stale golden dir: %s (no corpus entry; delete or run update)\n", name)
	}
}

func list(opts conformance.Options) error {
	if opts.CorpusDir == "" {
		corpus, golden, err := conformance.DefaultDirs()
		if err != nil {
			return err
		}
		opts.CorpusDir, opts.GoldenDir = corpus, golden
	}
	entries, err := conformance.Corpus(opts.CorpusDir)
	if err != nil {
		return err
	}
	fmt.Printf("%-20s %-28s %-9s %s\n", "ENTRY", "SOURCE", "ANALYTIC", "ARTIFACTS")
	for _, e := range entries {
		analytic := "-"
		if e.Analytic {
			analytic = "yes"
		}
		fmt.Printf("%-20s %-28s %-9s %s\n",
			e.Name, e.Source, analytic, strings.Join(conformance.ArtifactNames(), " "))
	}
	fmt.Printf("\noracles per entry: %s\n", strings.Join(conformance.OracleNames(), ", "))
	return nil
}

// genCorpus (re)writes the adversarial corpus models as XML + config
// sidecars; committed files and constructors are pinned to each other by
// the package tests.
func genCorpus(opts conformance.Options) error {
	if opts.CorpusDir == "" {
		corpus, _, err := conformance.DefaultDirs()
		if err != nil {
			return err
		}
		opts.CorpusDir = corpus
	}
	for _, e := range conformance.AdversarialEntries() {
		if err := conformance.WriteCorpusEntry(opts.CorpusDir, e); err != nil {
			return err
		}
		fmt.Printf("wrote %s/%s.xml\n", opts.CorpusDir, e.Name)
	}
	return nil
}
