package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestListSubcommand(t *testing.T) {
	if err := run([]string{"list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSubcommandWritesReport(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full corpus")
	}
	path := filepath.Join(t.TempDir(), "report.json")
	if err := run([]string{"run", "-q", "-json", path, "-only", "kernel6,sample"}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Mode    string `json:"mode"`
		Passed  bool   `json:"passed"`
		Entries []struct {
			Entry string `json:"entry"`
		} `json:"entries"`
	}
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Mode != "run" || !rep.Passed || len(rep.Entries) != 2 {
		t.Fatalf("unexpected report: mode %q passed %v entries %d", rep.Mode, rep.Passed, len(rep.Entries))
	}
}

func TestUnknownSubcommand(t *testing.T) {
	if err := run([]string{"frobnicate"}); err == nil {
		t.Fatal("unknown subcommand did not error")
	}
	if err := run(nil); err == nil {
		t.Fatal("missing subcommand did not error")
	}
}
