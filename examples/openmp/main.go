// Openmp models the intra-node side of the paper's target programs
// ("OpenMP is used to express the intra-node parallelism", Section 3): a
// parallel region whose team splits a fixed amount of work, with a small
// critical section per thread serializing a shared update.
//
// Sweeping the team size shows two effects the model captures without any
// code existing yet: (a) speedup saturates at the processor count of the
// node, and (b) the serialized critical section bounds scalability à la
// Amdahl even with unlimited processors.
//
//	go run ./examples/openmp
package main

import (
	"fmt"
	"log"

	"prophet"
	"prophet/internal/samples"
)

func main() {
	p := prophet.New()
	// Shared with cmd/experiments; see internal/samples.OmpRegion: a
	// parallel region whose team splits `work` seconds of computation,
	// each thread then entering a `critical`-second exclusive section.
	model := samples.OmpRegion()
	if rep := p.Check(model); rep.HasErrors() {
		log.Fatalf("model does not conform:\n%v", rep.Diagnostics)
	}

	globals := map[string]float64{"work": 8, "critical": 0.05}
	fmt.Println("node with 8 processors; region work = 8 s, critical = 50 ms/thread")
	fmt.Printf("%8s %14s %10s %10s\n", "threads", "makespan (s)", "speedup", "eff")
	var base float64
	for _, threads := range []int{1, 2, 4, 8, 16, 32} {
		est, err := p.Estimate(prophet.Request{
			Model: model,
			Params: prophet.SystemParams{
				Nodes: 1, ProcessorsPerNode: 8, Processes: 1, Threads: threads,
			},
			Globals: globals,
		})
		if err != nil {
			log.Fatal(err)
		}
		if base == 0 {
			base = est.Makespan
		}
		speedup := base / est.Makespan
		fmt.Printf("%8d %14.4f %10.3f %10.3f\n",
			threads, est.Makespan, speedup, speedup/float64(threads))
	}
	fmt.Println("\nSpeedup tracks the team size up to the 8 processors of the node,")
	fmt.Println("then oversubscription flattens it; the growing serialized critical")
	fmt.Println("section eats the remainder — both effects predicted from the model.")
}
