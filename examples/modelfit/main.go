// Modelfit demonstrates the full measurement-to-model workflow that the
// paper's methodology presumes (Section 2.1: cost functions carry "the
// estimated or the measured execution time"):
//
//  1. measure a real code block (Livermore kernel 3, the inner product)
//     across calibration sizes;
//
//  2. fit a multi-term linear cost model with least squares
//     (internal/fit) and render it as a cost-function expression;
//
//  3. inject the fitted expression into a UML performance model as the
//     body of its cost function;
//
//  4. evaluate the model by simulation at unseen sizes and compare the
//     predictions with fresh measurements.
//
//     go run ./examples/modelfit
package main

import (
	"fmt"
	"log"

	"prophet"
	"prophet/internal/fit"
	"prophet/internal/lfk"
)

func main() {
	// --- 1. measure -----------------------------------------------------
	k3, _ := lfk.ByID(3)
	var samples []fit.Sample
	for _, n := range []int{200_000, 400_000, 600_000, 800_000} {
		meas := lfk.TimeBest(k3, n, 4, 3)
		samples = append(samples, fit.Sample{
			Params: map[string]float64{"n": float64(n), "m": 4},
			Value:  meas.Seconds,
		})
		fmt.Printf("measured kernel 3 at n=%-8d m=4: %.4e s\n", n, meas.Seconds)
	}

	// --- 2. fit ----------------------------------------------------------
	model, err := fit.Fit(fit.MustTerms("m*n", "1"), samples)
	if err != nil {
		log.Fatal(err)
	}
	costFn := model.CostFunction()
	r2, _ := model.R2(samples)
	fmt.Printf("\nfitted cost function: %s   (R^2 = %.4f)\n\n", costFn, r2)

	// --- 3. inject into a performance model ------------------------------
	mb := prophet.NewModel("innerproduct")
	mb.Global("n", "double").
		Global("m", "double").
		Function("FDot", nil, costFn)
	d := mb.Diagram("main")
	d.Initial()
	d.Action("Dot").Cost("FDot()").Tag("id", "1")
	d.Final()
	d.Chain("initial", "Dot", "final")
	umlModel, err := mb.Build()
	if err != nil {
		log.Fatal(err)
	}
	p := prophet.New()
	if rep := p.Check(umlModel); rep.HasErrors() {
		log.Fatalf("fitted model does not conform:\n%v", rep.Diagnostics)
	}

	// --- 4. validate at unseen sizes -------------------------------------
	fmt.Printf("%10s %4s %14s %14s %8s\n", "n", "m", "measured (s)", "predicted (s)", "error")
	for _, sz := range []struct{ n, m int }{{300_000, 4}, {500_000, 8}, {1_000_000, 2}} {
		meas := lfk.TimeBest(k3, sz.n, sz.m, 3)
		est, err := p.Estimate(prophet.Request{
			Model:   umlModel,
			Globals: map[string]float64{"n": float64(sz.n), "m": float64(sz.m)},
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%10d %4d %14.4e %14.4e %+7.1f%%\n",
			sz.n, sz.m, meas.Seconds, est.Makespan,
			100*(est.Makespan-meas.Seconds)/meas.Seconds)
	}
	fmt.Println("\nThe fitted expression moved straight from measurements into the model's")
	fmt.Println("cost function; the same text would appear verbatim in the generated C++.")
}
