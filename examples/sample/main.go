// Sample reproduces the paper's Section 4 example exactly (experiments
// FIG7 and FIG8 of EXPERIMENTS.md): the UML specification of the sample
// model — main activity with A1, a branch on the global variable GV into
// activity SA or action A2, then A4 — is built programmatically (the
// scripted equivalent of Figure 7a), persisted as XML, transformed
// automatically to its C++ representation (Figure 8), and finally
// evaluated by simulation for both branch outcomes.
//
//	go run ./examples/sample
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"prophet"
	"prophet/internal/samples"
	"prophet/internal/uml"
)

func main() {
	p := prophet.New()
	m := samples.Sample()

	// Persist the model the way Teuta stores it (Models (XML), Figure 2).
	dir, err := os.MkdirTemp("", "prophet-sample")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	xmlPath := filepath.Join(dir, "sample.xml")
	if err := prophet.SaveModel(xmlPath, m); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model persisted to %s\n\n", xmlPath)

	// Model checking.
	if rep := p.Check(m); rep.HasErrors() {
		log.Fatalf("sample model does not conform:\n%v", rep.Diagnostics)
	}

	// The automatic UML -> C++ transformation (Figure 5 algorithm); the
	// output reproduces the structure of Figure 8.
	cpp, err := p.TransformCpp(m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== C++ representation of the sample model (Figure 8) ===")
	fmt.Println(cpp)

	// Evaluate by simulation. A1's associated code fragment (Figure 7b)
	// sets GV = 10, so the branch executes activity SA.
	tracePath := filepath.Join(dir, "sample.trace")
	est, err := p.Estimate(prophet.Request{Model: m, TracePath: tracePath})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("predicted execution time (GV > 0, activity SA): %.4g\n", est.Makespan)
	fmt.Println()
	fmt.Print(est.Summary.Report())
	fmt.Println()
	fmt.Print(prophet.Gantt(est.Trace, 60))

	// Flip the branch: suppress the code fragment and force GV <= 0, so
	// the else path through A2 executes instead (Figure 8b's else arm).
	m2 := uml.Clone(m)
	a1 := m2.Main().NodeByName("A1").(*uml.ActionNode)
	a1.Code = "P = 4;"
	est2, err := p.Estimate(prophet.Request{
		Model:   m2,
		Globals: map[string]float64{"GV": -1},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npredicted execution time (GV <= 0, action A2): %.4g\n", est2.Makespan)
}
