// Jacobi models a distributed-memory iterative stencil solver — the kind
// of MPI program the paper's methodology targets (Section 3: "The MPI is
// usually used to express the inter-node parallelism"). Each process owns
// a slab of an n x n grid; every iteration it computes its slab, exchanges
// halo rows with its neighbors (mpi_send / mpi_recv with guards on the
// boundary ranks), and joins a global reduction for the convergence test.
//
// The example builds the model, emits its C++ representation, and runs a
// scalability sweep: the crossover where communication starts to dominate
// computation appears exactly as the methodology predicts.
//
//	go run ./examples/jacobi
package main

import (
	"fmt"
	"log"

	"prophet"
	"prophet/internal/samples"
)

func main() {
	p := prophet.New()
	// The model is shared with cmd/experiments; see
	// internal/samples.Jacobi for its construction: per iteration each
	// process computes its slab, exchanges halo rows with its neighbors
	// (guarded sends/receives so boundary ranks skip the missing side),
	// and joins a global reduction for the convergence test.
	model := samples.Jacobi()
	if rep := p.Check(model); rep.HasErrors() {
		log.Fatalf("jacobi model does not conform:\n%v", rep.Diagnostics)
	}

	cpp, err := p.TransformCpp(model)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== C++ representation of the Jacobi model (excerpt) ===")
	// Print the first 40 lines; the flow section repeats per stereotype.
	printHead(cpp, 40)

	globals := map[string]float64{"n": 4096, "iters": 50, "flop": 2e-9}
	req := prophet.Request{
		Model:   model,
		Params:  prophet.SystemParams{ProcessorsPerNode: 8, Threads: 1},
		Globals: globals,
	}
	fmt.Println("\n=== scalability sweep (n=4096, 50 iterations) ===")
	pts, err := p.SweepProcesses(req, []int{1, 2, 4, 8, 16, 32, 64})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%10s %8s %14s %10s %10s\n", "processes", "nodes", "makespan", "speedup", "eff")
	for _, pt := range pts {
		fmt.Printf("%10d %8d %14.6g %10.3f %10.3f\n",
			pt.Processes, pt.Nodes, pt.Makespan, pt.Speedup, pt.Efficiency)
	}
	fmt.Println("\nEfficiency falls as halo exchange and the convergence reduction")
	fmt.Println("stop amortizing over the shrinking per-process slab: the classic")
	fmt.Println("strong-scaling communication crossover, predicted from the model alone.")
}

func printHead(s string, lines int) {
	count := 0
	for _, r := range s {
		fmt.Print(string(r))
		if r == '\n' {
			count++
			if count >= lines {
				fmt.Println("    ...")
				return
			}
		}
	}
}
