// Kernel6 reproduces the paper's running example end to end (Figures 3
// and 4, experiments FIG3/FIG4/EXTRA-PRED of EXPERIMENTS.md):
//
//  1. run the real Livermore kernel 6 (ported to Go) and calibrate the
//     per-iteration cost c of its cost function FK6 = M * (N-1)*N/2 * c;
//
//  2. build the collapsed UML model of Figure 3(c) and the detailed
//     loop-nest model of Figure 3(b);
//
//  3. transform the collapsed model to C++ (the Figure 4 transition);
//
//  4. evaluate both models by simulation with the calibrated c and compare
//     the predictions against fresh measurements of the real kernel.
//
//     go run ./examples/kernel6
package main

import (
	"fmt"
	"log"

	"prophet"
	"prophet/internal/lfk"
	"prophet/internal/samples"
)

func main() {
	p := prophet.New()

	// --- 1. calibrate against the real kernel -------------------------
	k6, _ := lfk.ByID(6)
	c, calibs, err := lfk.Calibrate(k6, []lfk.Size{
		{N: 400, M: 8}, {N: 600, M: 6}, {N: 800, M: 4},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("calibrated cost per inner iteration: c = %.3e s (from %d samples)\n\n", c, len(calibs))

	// --- 2/3. models and the Figure 4 transformation ------------------
	collapsed := samples.Kernel6()
	detailed := samples.Kernel6Detailed()
	cpp, err := p.TransformCpp(collapsed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== C++ representation of the collapsed kernel 6 model (Figure 4) ===")
	fmt.Println(cpp)

	// --- 4. predicted vs measured across problem sizes ----------------
	fmt.Printf("%6s %4s %14s %14s %14s %10s\n",
		"N", "M", "measured (s)", "pred/collapsed", "pred/detailed", "err %")
	for _, sz := range []lfk.Size{{N: 300, M: 8}, {N: 500, M: 8}, {N: 700, M: 6}, {N: 1000, M: 3}} {
		meas := lfk.TimeBest(k6, sz.N, sz.M, 3)
		globals := map[string]float64{"N": float64(sz.N), "M": float64(sz.M), "c": c}

		estC, err := p.Estimate(prophet.Request{Model: collapsed, Globals: globals})
		if err != nil {
			log.Fatal(err)
		}
		estD, err := p.Estimate(prophet.Request{Model: detailed, Globals: globals})
		if err != nil {
			log.Fatal(err)
		}
		errPct := 100 * (estC.Makespan - meas.Seconds) / meas.Seconds
		fmt.Printf("%6d %4d %14.4e %14.4e %14.4e %+9.1f%%\n",
			sz.N, sz.M, meas.Seconds, estC.Makespan, estD.Makespan, errPct)
	}
	fmt.Println("\nThe collapsed (Figure 3c) and detailed (Figure 3b) models agree exactly;")
	fmt.Println("both track the measured kernel, validating the paper's model-collapsing step.")
}
