// Stochastic models a program whose dominant branch is data dependent: a
// query loop where each lookup hits a fast in-memory cache 85% of the
// time and falls through to slow storage otherwise. Instead of modeling
// the (unknowable) branch condition, the decision carries branch
// *weights* — the probabilistic extension of the guard mechanism — and
// the estimator samples the makespan distribution across seeds.
//
//	go run ./examples/stochastic
package main

import (
	"fmt"
	"log"

	"prophet"
)

func buildQueryModel(queries int) (*prophet.Model, error) {
	mb := prophet.NewModel("query-mix")
	mb.Global("hitCost", "double").
		Global("missCost", "double")

	d := mb.Diagram("main")
	d.Initial()
	d.Loop("Queries", fmt.Sprint(queries), "one").Var("q").Tag("id", "1")
	d.Final()
	d.Chain("initial", "Queries", "final")

	one := mb.Diagram("one")
	one.Initial()
	one.Decision("cache")
	one.Action("Hit").Cost("hitCost").Tag("id", "2")
	one.Action("Miss").Cost("missCost").Tag("id", "3")
	one.Merge("done")
	one.Final()
	one.Flow("initial", "cache")
	one.FlowWeighted("cache", "Hit", 0.85)
	one.FlowWeighted("cache", "Miss", 0.15)
	one.Flow("Hit", "done")
	one.Flow("Miss", "done")
	one.Flow("done", "final")

	return mb.Build()
}

func main() {
	p := prophet.New()
	const queries = 1000
	model, err := buildQueryModel(queries)
	if err != nil {
		log.Fatal(err)
	}
	if rep := p.Check(model); rep.HasErrors() {
		log.Fatalf("model does not conform:\n%v", rep.Diagnostics)
	}

	globals := map[string]float64{"hitCost": 100e-6, "missCost": 10e-3}
	req := prophet.Request{Model: model, Globals: globals}

	// Analytic expectation: queries * (0.85*hit + 0.15*miss).
	expected := queries * (0.85*100e-6 + 0.15*10e-3)
	fmt.Printf("analytic expectation: %.4f s\n\n", expected)

	res, err := p.MonteCarlo(req, 200)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("monte carlo over %d seeds (%d queries, 85%% hit rate):\n", res.Runs, queries)
	fmt.Printf("  mean makespan: %.4f s\n", res.Mean)
	fmt.Printf("  std deviation: %.4f s\n", res.Std)
	fmt.Printf("  min / max:     %.4f / %.4f s\n\n", res.Min, res.Max)

	// What-if: how does the mean move with the hit rate? Rebuild the
	// model across hit rates (weights are structure, not globals).
	fmt.Printf("%10s %14s\n", "hit rate", "mean makespan")
	for _, hit := range []float64{0.5, 0.7, 0.85, 0.95, 0.99} {
		mb := prophet.NewModel("sweep")
		mb.Global("hitCost", "double").Global("missCost", "double")
		d := mb.Diagram("main")
		d.Initial()
		d.Loop("Queries", fmt.Sprint(queries), "one").Var("q")
		d.Final()
		d.Chain("initial", "Queries", "final")
		one := mb.Diagram("one")
		one.Initial()
		one.Decision("cache")
		one.Action("Hit").Cost("hitCost")
		one.Action("Miss").Cost("missCost")
		one.Merge("done")
		one.Final()
		one.Flow("initial", "cache")
		one.FlowWeighted("cache", "Hit", hit)
		one.FlowWeighted("cache", "Miss", 1-hit)
		one.Flow("Hit", "done")
		one.Flow("Miss", "done")
		one.Flow("done", "final")
		m, err := mb.Build()
		if err != nil {
			log.Fatal(err)
		}
		r, err := p.MonteCarlo(prophet.Request{Model: m, Globals: globals}, 50)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%9.0f%% %14.4f\n", hit*100, r.Mean)
	}
	fmt.Println("\nThe cache hit rate dominates: a 99% hit rate is ~5x faster than 85%,")
	fmt.Println("quantified before a single line of cache code exists.")
}
