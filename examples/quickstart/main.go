// Quickstart: build a small performance model through the public API,
// check it, transform it to C++ (the paper's Figure 5 algorithm), and
// evaluate it by simulation.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"prophet"
)

func main() {
	p := prophet.New()

	// 1. Specify the performance model: a program that initializes, then
	//    either takes a fast path or a slow path depending on the problem
	//    size, and finally writes results. Each code block becomes an
	//    <<action+>> with a cost function (paper, Figures 1 and 7).
	mb := prophet.NewModel("quickstart")
	mb.Global("size", "double").
		Function("FInit", nil, "0.001 * size").
		Function("FFast", nil, "0.002 * size").
		Function("FSlow", nil, "0.0001 * size * size").
		Function("FWrite", nil, "0.05")

	d := mb.Diagram("main")
	d.Initial()
	d.Action("Init").Cost("FInit()").Tag("id", "1")
	d.Decision("path")
	d.Action("Fast").Cost("FFast()").Tag("id", "2")
	d.Action("Slow").Cost("FSlow()").Tag("id", "3")
	d.Merge("merge")
	d.Action("Write").Cost("FWrite()").Tag("id", "4")
	d.Final()
	d.Flow("initial", "Init").
		Flow("Init", "path").
		FlowIf("path", "Slow", "size > 100").
		FlowIf("path", "Fast", "else").
		Flow("Slow", "merge").
		Flow("Fast", "merge").
		Flow("merge", "Write").
		Flow("Write", "final")

	model, err := mb.Build()
	if err != nil {
		log.Fatal(err)
	}

	// 2. Model checking (Teuta's Model Checker).
	if rep := p.Check(model); rep.HasErrors() {
		log.Fatalf("model does not conform:\n%v", rep.Diagnostics)
	}

	// 3. Automatic transformation to the C++ representation.
	cpp, err := p.TransformCpp(model)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== generated C++ representation (PMP) ===")
	fmt.Println(cpp)

	// 4. Evaluate by simulation for two problem sizes: the branch flips
	//    between the fast and slow path.
	for _, size := range []float64{50, 400} {
		est, err := p.Estimate(prophet.Request{
			Model:   model,
			Globals: map[string]float64{"size": size},
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("size=%4.0f  predicted execution time: %.4f\n", size, est.Makespan)
	}
}
