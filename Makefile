# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all check build test vet race bench cover examples experiments clean

all: check

# The default gate: compile, vet, full test suite, and a race-detector
# pass over the concurrency-heavy packages.
check: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-detector pass over the simulation engine (goroutine handoffs) and
# the metrics package (lock-free atomics).
race:
	$(GO) test -race ./internal/sim/... ./internal/obs/...

# Full benchmark pass (the per-table/figure harness of EXPERIMENTS.md).
bench:
	$(GO) test -bench=. -benchmem .

cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1

# Run every example end to end.
examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/sample
	$(GO) run ./examples/kernel6
	$(GO) run ./examples/jacobi
	$(GO) run ./examples/openmp

# Regenerate the experiment report of EXPERIMENTS.md.
experiments:
	$(GO) run ./cmd/experiments

clean:
	rm -f cover.out test_output.txt bench_output.txt
