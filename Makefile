# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test vet bench cover examples experiments clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Full benchmark pass (the per-table/figure harness of EXPERIMENTS.md).
bench:
	$(GO) test -bench=. -benchmem .

cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1

# Run every example end to end.
examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/sample
	$(GO) run ./examples/kernel6
	$(GO) run ./examples/jacobi
	$(GO) run ./examples/openmp

# Regenerate the experiment report of EXPERIMENTS.md.
experiments:
	$(GO) run ./cmd/experiments

clean:
	rm -f cover.out test_output.txt bench_output.txt
