# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all check build test vet race smoke loadtest bench bench-pipeline \
	bench-pipeline-check cover examples \
	experiments conformance conformance-update fuzz-smoke clean

all: check

# The default gate: compile, vet, full test suite, and a race-detector
# pass over the concurrency-heavy packages.
check: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-detector pass over the simulation engine (goroutine handoffs),
# the metrics package (lock-free atomics), the batch runtime
# (worker-pool fan-out) plus the estimator entry points built on it,
# and the HTTP serving layer (admission control, drain, model store).
race:
	$(GO) test -race ./internal/sim/... ./internal/obs/... ./internal/runner/... ./internal/estimator/... ./internal/lower/... ./internal/server/... ./internal/analytic/...

# Black-box smoke test of the prophetd binary: start it, register a
# model, estimate, scrape /metrics, and check SIGTERM drains cleanly.
smoke:
	./scripts/prophetd_smoke.sh

# Serving-layer load test: drive cold / hot / concurrent-identical
# traffic through a live prophetd with cmd/loadgen, write the
# BENCH_serving.json latency/throughput report, and enforce the
# hot-path req/s, cache-hit-rate, and hot-vs-cold speedup floors.
loadtest:
	./scripts/prophetd_loadtest.sh

# Full benchmark pass (the per-table/figure harness of EXPERIMENTS.md),
# plus the runner/sim hot-path benchmarks and the BENCH_runner.json
# artifact tracking ns/op, allocs/op, and parallel speedup across PRs.
bench:
	$(GO) test -bench=. -benchmem .
	$(GO) test -bench=. -benchmem ./internal/sim/ ./internal/estimator/
	$(GO) run ./cmd/benchrunner -o BENCH_runner.json -min-analytic-speedup 100

# Per-stage pipeline scalability trajectory: every transformation stage
# (parse, encode, hash, check, traverse, compile, lower, codegen,
# simulate) measured over generated models at 10^3..10^5 nodes and
# written to BENCH_pipeline.json. See docs/PERFORMANCE.md.
bench-pipeline:
	$(GO) run ./cmd/benchpipeline -o BENCH_pipeline.json

# Regression gate: measure fresh and compare against the committed
# BENCH_pipeline.json; any stage slower than 2x baseline fails (the
# CI bench-pipeline job runs this).
bench-pipeline-check:
	$(GO) run ./cmd/benchpipeline -o BENCH_pipeline_fresh.json -baseline BENCH_pipeline.json

cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1

# Run every example end to end.
examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/sample
	$(GO) run ./examples/kernel6
	$(GO) run ./examples/jacobi
	$(GO) run ./examples/openmp

# Regenerate the experiment report of EXPERIMENTS.md.
experiments:
	$(GO) run ./cmd/experiments

# End-to-end conformance harness: corpus → full pipeline → goldens +
# differential oracles (docs/TESTING.md). Fails on drift.
conformance:
	$(GO) run ./cmd/conformance run -json conformance-report.json

# Regenerate the golden artifacts after an intentional output change;
# review the testdata/golden diff before committing.
conformance-update:
	$(GO) run ./cmd/conformance update

# Short fuzz pass over every target; long sessions are manual.
fuzz-smoke:
	$(GO) test -fuzz=FuzzDecode -fuzztime=5s ./internal/xmi/
	$(GO) test -fuzz=FuzzRoundTrip -fuzztime=5s ./internal/xmi/
	$(GO) test -fuzz=FuzzParse -fuzztime=5s ./internal/expr/
	$(GO) test -fuzz=FuzzEval -fuzztime=5s ./internal/expr/
	$(GO) test -fuzz=FuzzRead -fuzztime=5s ./internal/trace/
	$(GO) test -fuzz=FuzzPipeline -fuzztime=10s ./internal/core/
	$(GO) test -fuzz=FuzzLoweredEquivalence -fuzztime=5s ./internal/lower/
	$(GO) test -fuzz=FuzzAnalyticAgreement -fuzztime=5s ./internal/analytic/

clean:
	rm -f cover.out test_output.txt bench_output.txt conformance-report.json
