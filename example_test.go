package prophet_test

import (
	"fmt"
	"strings"

	"prophet"
)

// Example walks the full pipeline of the paper's Figure 2: specify a
// model, check it, transform it to C++, and evaluate it by simulation.
func Example() {
	p := prophet.New()

	mb := prophet.NewModel("app")
	mb.Global("P", "double").Function("F", nil, "2*P")
	d := mb.Diagram("main")
	d.Initial()
	d.Action("Work").Cost("F()").Tag("id", "1")
	d.Final()
	d.Chain("initial", "Work", "final")
	model, err := mb.Build()
	if err != nil {
		panic(err)
	}

	if rep := p.Check(model); rep.HasErrors() {
		panic("model does not conform")
	}

	cpp, err := p.TransformCpp(model)
	if err != nil {
		panic(err)
	}
	for _, line := range strings.Split(cpp, "\n") {
		if strings.Contains(line, "execute") {
			fmt.Println(strings.TrimSpace(line))
		}
	}

	est, err := p.Estimate(prophet.Request{
		Model:   model,
		Globals: map[string]float64{"P": 4},
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("predicted:", est.Makespan)
	// Output:
	// work.execute(uid, pid, tid, F());
	// predicted: 8
}

// Example_scalability predicts strong scaling before any code exists.
func Example_scalability() {
	p := prophet.New()
	mb := prophet.NewModel("scale")
	mb.Global("W", "double").Function("F", nil, "W / processes")
	d := mb.Diagram("main")
	d.Initial()
	d.Action("Par").Cost("F()")
	d.Final()
	d.Chain("initial", "Par", "final")
	model, _ := mb.Build()

	pts, err := p.SweepProcesses(prophet.Request{
		Model:   model,
		Params:  prophet.SystemParams{ProcessorsPerNode: 8, Threads: 1},
		Globals: map[string]float64{"W": 64},
	}, []int{1, 2, 4})
	if err != nil {
		panic(err)
	}
	for _, pt := range pts {
		fmt.Printf("P=%d makespan=%g speedup=%.0f\n", pt.Processes, pt.Makespan, pt.Speedup)
	}
	// Output:
	// P=1 makespan=64 speedup=1
	// P=2 makespan=32 speedup=2
	// P=4 makespan=16 speedup=4
}
