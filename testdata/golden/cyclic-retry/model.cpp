(generation refused)
cppgen: diagram "main": unstructured cycle through node "again"; model loops with <<loop+>> elements
